//! The model-variant registry: the seven QEP2Seq configurations of
//! paper Table 5 / Figure 7(a), each pairing the base model with a
//! decoder-embedding source.

use crate::dataset::TrainingSet;
use crate::model::{Qep2Seq, Qep2SeqConfig};
use lantern_embed::{
    builtin_english_corpus, BertStyleEncoder, Corpus, ElmoStyleBiLm, Embedder, GloveTrainer,
    Word2VecTrainer,
};

/// Embedding condition of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// Randomly initialized, learned embeddings.
    Random,
    /// Word2Vec on the general corpus.
    Word2VecPretrained,
    /// Word2Vec on the RULE-LANTERN output corpus.
    Word2VecSelfTrained,
    /// GloVe on the general corpus.
    GlovePretrained,
    /// GloVe on the RULE-LANTERN output corpus.
    GloveSelfTrained,
    /// BERT-style contextual encoder on the general corpus.
    BertPretrained,
    /// ELMo-style biLM on the general corpus.
    ElmoPretrained,
}

/// A named Table-5 row.
#[derive(Debug, Clone, Copy)]
pub struct ModelVariant {
    /// Row label exactly as the paper prints it.
    pub name: &'static str,
    /// Embedding condition.
    pub kind: VariantKind,
}

/// All seven Table-5 variants in paper order.
pub const TABLE5_VARIANTS: &[ModelVariant] = &[
    ModelVariant {
        name: "QEP2Seq",
        kind: VariantKind::Random,
    },
    ModelVariant {
        name: "QEP2Seq+GloVe (pre-trained)",
        kind: VariantKind::GlovePretrained,
    },
    ModelVariant {
        name: "QEP2Seq+GloVe (self-trained)",
        kind: VariantKind::GloveSelfTrained,
    },
    ModelVariant {
        name: "QEP2Seq+Word2Vec (pre-trained)",
        kind: VariantKind::Word2VecPretrained,
    },
    ModelVariant {
        name: "QEP2Seq+Word2Vec (self-trained)",
        kind: VariantKind::Word2VecSelfTrained,
    },
    ModelVariant {
        name: "QEP2Seq+BERT (pre-trained)",
        kind: VariantKind::BertPretrained,
    },
    ModelVariant {
        name: "QEP2Seq+ELMo (pre-trained)",
        kind: VariantKind::ElmoPretrained,
    },
];

impl ModelVariant {
    /// Build the (untrained) model for this variant. Pre-trained
    /// conditions train their embedder on the built-in general corpus;
    /// self-trained conditions on the rule sentences of `ts`.
    pub fn build(&self, ts: &TrainingSet, config: Qep2SeqConfig) -> Qep2Seq {
        let general = builtin_english_corpus;
        let self_corpus = || {
            let sentences: Vec<String> = ts
                .rule_sentences()
                .iter()
                .map(|toks| toks.join(" "))
                .collect();
            Corpus::from_sentences(&sentences)
        };
        let seed = config.seed.wrapping_add(1000);
        match self.kind {
            VariantKind::Random => Qep2Seq::new(ts, config),
            VariantKind::Word2VecPretrained => {
                let e = Word2VecTrainer {
                    dim: 16,
                    epochs: 4,
                    ..Default::default()
                }
                .train(&general(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
            VariantKind::Word2VecSelfTrained => {
                let e = Word2VecTrainer {
                    dim: 16,
                    epochs: 4,
                    ..Default::default()
                }
                .train(&self_corpus(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
            VariantKind::GlovePretrained => {
                let e = GloveTrainer {
                    dim: 16,
                    epochs: 10,
                    ..Default::default()
                }
                .train(&general(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
            VariantKind::GloveSelfTrained => {
                let e = GloveTrainer {
                    dim: 16,
                    epochs: 10,
                    ..Default::default()
                }
                .train(&self_corpus(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
            VariantKind::BertPretrained => {
                let e = BertStyleEncoder {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                }
                .train(&general(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
            VariantKind::ElmoPretrained => {
                let e = ElmoStyleBiLm {
                    dim: 24,
                    epochs: 2,
                    ..Default::default()
                }
                .train(&general(), seed);
                Qep2Seq::with_embedding(ts, config, &e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use lantern_catalog::tpch_catalog;
    use lantern_engine::Database;
    use lantern_pool::default_pg_store;

    #[test]
    fn all_seven_variants_build() {
        let db = Database::generate(&tpch_catalog(), 0.0002, 7);
        let store = default_pg_store();
        let ts = DatasetBuilder::new(&db, &store)
            .with_random_queries(10, 3)
            .paraphrase(false)
            .build();
        assert_eq!(TABLE5_VARIANTS.len(), 7);
        for v in TABLE5_VARIANTS {
            let m = v.build(&ts, Qep2SeqConfig::default());
            assert!(m.parameter_count() > 0, "{}", v.name);
        }
    }

    #[test]
    fn paper_row_names_present() {
        let names: Vec<&str> = TABLE5_VARIANTS.iter().map(|v| v.name).collect();
        assert!(names.contains(&"QEP2Seq"));
        assert!(names.contains(&"QEP2Seq+BERT (pre-trained)"));
        assert!(names.contains(&"QEP2Seq+Word2Vec (self-trained)"));
    }
}
