//! Training-data generation (paper §6.2): queries → QEPs → acts →
//! RULE-LANTERN tagged labels → paraphrase expansion (~3x).

use lantern_core::{decompose_acts, Act};
use lantern_engine::{Database, Planner, QueryGenConfig, RandomQueryGen};
use lantern_paraphrase::expand::expand_corpus;
use lantern_pool::PoemStore;
use lantern_sql::Query;
use lantern_text::{tokenize, Vocab};

/// One training example: an act's input token sequence paired with one
/// (possibly paraphrased) tagged output sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Input tokens (operator names + tag slots).
    pub input_tokens: Vec<String>,
    /// Output tokens (tagged natural-language label).
    pub output_tokens: Vec<String>,
    /// Whether this example came from a paraphrase engine (false =
    /// original rule output).
    pub paraphrased: bool,
}

/// A complete training set with its vocabularies.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    /// All examples.
    pub examples: Vec<Example>,
    /// Input-side vocabulary (paper: 36 tokens).
    pub input_vocab: Vocab,
    /// Output-side vocabulary (paper: 62 tokens).
    pub output_vocab: Vocab,
    /// Number of acts the source plans decomposed into (pre-expansion).
    pub act_count: usize,
}

/// Encoded (input-token-id, output-token-id) pairs fed to the trainer.
pub type EncodedPairs = Vec<(Vec<usize>, Vec<usize>)>;

impl TrainingSet {
    /// Encode all examples into id pairs for the trainer.
    pub fn encoded(&self) -> EncodedPairs {
        self.examples
            .iter()
            .map(|e| {
                (
                    self.input_vocab.encode(&e.input_tokens, false),
                    self.output_vocab.encode(&e.output_tokens, false),
                )
            })
            .collect()
    }

    /// Deterministic train/validation split (paper: 80/20 random).
    pub fn split(&self, train_fraction: f64, seed: u64) -> (EncodedPairs, EncodedPairs) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all = self.encoded();
        all.shuffle(&mut rng);
        let n_train = ((all.len() as f64) * train_fraction).round() as usize;
        let val = all.split_off(n_train.min(all.len()));
        (all, val)
    }

    /// The original (non-paraphrased) rule sentences — the
    /// "self-trained" embedding corpus.
    pub fn rule_sentences(&self) -> Vec<Vec<String>> {
        self.examples
            .iter()
            .filter(|e| !e.paraphrased)
            .map(|e| e.output_tokens.clone())
            .collect()
    }
}

/// Builds training sets from workloads (paper §6.2 + §7.1).
pub struct DatasetBuilder<'a> {
    db: &'a Database,
    store: &'a PoemStore,
    queries: Vec<Query>,
    paraphrase: bool,
}

impl<'a> DatasetBuilder<'a> {
    /// Start a builder over a database and POEM store.
    pub fn new(db: &'a Database, store: &'a PoemStore) -> Self {
        DatasetBuilder {
            db,
            store,
            queries: Vec::new(),
            paraphrase: true,
        }
    }

    /// Add workload queries.
    pub fn with_queries(mut self, queries: &[Query]) -> Self {
        self.queries.extend(queries.iter().cloned());
        self
    }

    /// Add `n` random queries (Kipf-style generator).
    pub fn with_random_queries(mut self, n: usize, seed: u64) -> Self {
        let mut gen = RandomQueryGen::new(self.db, seed, QueryGenConfig::default());
        self.queries.extend(gen.generate(n));
        self
    }

    /// Enable/disable paraphrase expansion (Fig 6(a) ablation).
    pub fn paraphrase(mut self, on: bool) -> Self {
        self.paraphrase = on;
        self
    }

    /// Decompose every query's plan into acts (planning parallelized
    /// across scoped worker threads).
    pub fn acts(&self) -> Vec<Act> {
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let chunk = (self.queries.len() / n_workers).max(1);
        let results: Vec<Vec<Act>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .queries
                .chunks(chunk)
                .map(|qs| {
                    scope.spawn(move || {
                        let planner = Planner::new(self.db);
                        let mut acts = Vec::new();
                        for q in qs {
                            let Ok(plan) = planner.plan(q) else { continue };
                            let tree = plan.tree();
                            if let Ok(a) = decompose_acts(&tree, self.store) {
                                acts.extend(a);
                            }
                        }
                        acts
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }

    /// Build the training set.
    pub fn build(self) -> TrainingSet {
        let acts = self.acts();
        let act_count = acts.len();
        let mut examples = Vec::new();
        if self.paraphrase {
            let labels: Vec<String> = acts.iter().map(|a| a.tagged_label.clone()).collect();
            let (groups, _) = expand_corpus(&labels, 1);
            for (act, group) in acts.iter().zip(groups) {
                for (gi, sentence) in group.iter().enumerate() {
                    examples.push(Example {
                        input_tokens: act.input_tokens(),
                        output_tokens: tokenize(sentence),
                        paraphrased: gi > 0,
                    });
                }
            }
        } else {
            for act in &acts {
                examples.push(Example {
                    input_tokens: act.input_tokens(),
                    output_tokens: act.output_tokens(),
                    paraphrased: false,
                });
            }
        }
        let input_vocab = Vocab::from_corpus(
            &examples
                .iter()
                .map(|e| e.input_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        );
        let output_vocab = Vocab::from_corpus(
            &examples
                .iter()
                .map(|e| e.output_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        );
        TrainingSet {
            examples,
            input_vocab,
            output_vocab,
            act_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::tpch_catalog;
    use lantern_pool::default_pg_store;

    fn small_set(paraphrase: bool) -> TrainingSet {
        let db = Database::generate(&tpch_catalog(), 0.0002, 7);
        let store = default_pg_store();
        DatasetBuilder::new(&db, &store)
            .with_random_queries(30, 11)
            .paraphrase(paraphrase)
            .build()
    }

    #[test]
    fn builds_examples_from_random_queries() {
        let ts = small_set(false);
        assert!(ts.act_count >= 30, "{}", ts.act_count);
        assert_eq!(ts.examples.len(), ts.act_count);
        for e in &ts.examples {
            assert!(!e.input_tokens.is_empty());
            assert!(!e.output_tokens.is_empty());
        }
    }

    #[test]
    fn paraphrasing_expands_about_3x() {
        let plain = small_set(false);
        let expanded = small_set(true);
        let ratio = expanded.examples.len() as f64 / plain.examples.len() as f64;
        assert!(ratio > 2.0 && ratio <= 4.0, "expansion ratio {ratio}");
        assert!(expanded.examples.iter().any(|e| e.paraphrased));
    }

    #[test]
    fn vocabularies_are_compact_like_the_paper() {
        // Paper: input vocabulary 36, output vocabulary 62. Ours must
        // be the same order of magnitude (schema-independent tokens).
        let ts = small_set(true);
        assert!(
            ts.input_vocab.len() <= 40,
            "input vocab {}",
            ts.input_vocab.len()
        );
        assert!(
            ts.output_vocab.len() <= 120,
            "output vocab {}",
            ts.output_vocab.len()
        );
    }

    #[test]
    fn encoded_pairs_align_with_examples() {
        let ts = small_set(false);
        let enc = ts.encoded();
        assert_eq!(enc.len(), ts.examples.len());
        assert_eq!(enc[0].0.len(), ts.examples[0].input_tokens.len());
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let ts = small_set(false);
        let (tr1, va1) = ts.split(0.8, 5);
        let (tr2, va2) = ts.split(0.8, 5);
        assert_eq!(tr1, tr2);
        assert_eq!(va1, va2);
        assert_eq!(tr1.len() + va1.len(), ts.examples.len());
    }

    #[test]
    fn rule_sentences_exclude_paraphrases() {
        let ts = small_set(true);
        let rules = ts.rule_sentences();
        assert_eq!(rules.len(), ts.act_count);
    }
}
