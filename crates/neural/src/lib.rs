//! # lantern-neural
//!
//! NEURAL-LANTERN (paper §6): the deep-learning translation pipeline
//! that injects language variability into QEP narrations.
//!
//! * [`dataset`] — training-data generation (§6.2): random queries →
//!   QEPs → act decomposition → RULE-LANTERN labels → special-tag
//!   abstraction (Table 1) → paraphrase expansion (~3x).
//! * [`model`] — QEP2Seq (§6.4): act linearization into input token
//!   sequences, the Seq2Seq wiring with pluggable decoder embeddings
//!   (random / Word2Vec / GloVe / BERT-style / ELMo-style, shared or
//!   separate weights), training with teacher forcing and early
//!   stopping, beam-search inference, tag re-substitution.
//! * [`registry`] — the seven Table-5 model variants by name.
//! * [`NeuralLantern`] — the user-facing translator.

pub mod dataset;
pub mod model;
pub mod registry;
pub mod translator;

pub use dataset::{DatasetBuilder, EncodedPairs, Example, TrainingSet};
pub use model::{Qep2Seq, Qep2SeqConfig};
pub use registry::{ModelVariant, VariantKind};
pub use translator::NeuralLantern;
