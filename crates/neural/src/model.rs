//! QEP2Seq (paper §6.4): the Seq2Seq model specialized to act
//! translation, with pluggable decoder embeddings, training, beam-
//! search inference, and tag re-substitution.

use crate::dataset::TrainingSet;
use lantern_core::Act;
use lantern_embed::Embedding;
use lantern_nn::{
    beam_search_batched_scratch, DecodeScratch, Seq2Seq, Seq2SeqConfig, TrainOptions, TrainReport,
    Trainer,
};
use lantern_text::{corpus_bleu, detokenize, BleuConfig, Vocab};

/// QEP2Seq hyperparameters (scaled-down defaults that train in seconds
/// on CPU; the paper-scale numbers live in `lantern_nn::params`).
#[derive(Debug, Clone)]
pub struct Qep2SeqConfig {
    /// LSTM hidden size.
    pub hidden: usize,
    /// Encoder embedding dimension.
    pub encoder_embed_dim: usize,
    /// Decoder embedding dimension (overridden by a pre-trained
    /// embedding's dimensionality when one is installed).
    pub decoder_embed_dim: usize,
    /// Attention dimensionality.
    pub attention_dim: usize,
    /// Share encoder/decoder recurrent weights (Fig 7(b)).
    pub share_recurrent_weights: bool,
    /// Init/shuffle seed.
    pub seed: u64,
    /// Training options.
    pub train: TrainOptions,
}

impl Default for Qep2SeqConfig {
    fn default() -> Self {
        Qep2SeqConfig {
            hidden: 48,
            encoder_embed_dim: 12,
            decoder_embed_dim: 16,
            attention_dim: 24,
            share_recurrent_weights: false,
            seed: 0,
            train: TrainOptions {
                epochs: 18,
                batch_size: 4,
                learning_rate: 0.25,
                clip: 5.0,
                early_stop_fluctuation: None,
                seed: 0,
                parallel: false,
            },
        }
    }
}

impl Qep2SeqConfig {
    /// The `quick` training profile: a deliberately tiny model and
    /// epoch budget that still learns the act-translation task well
    /// enough to assert on, so one end-to-end seq2seq training test can
    /// run un-`#[ignore]`d in tier-1 (seconds, not minutes). The
    /// paper-faithful numbers stay in [`Qep2SeqConfig::default`].
    pub fn quick() -> Self {
        Qep2SeqConfig {
            hidden: 32,
            encoder_embed_dim: 10,
            decoder_embed_dim: 12,
            attention_dim: 16,
            share_recurrent_weights: false,
            seed: 0,
            train: TrainOptions {
                epochs: 20,
                batch_size: 4,
                learning_rate: 0.25,
                clip: 5.0,
                early_stop_fluctuation: None,
                seed: 0,
                parallel: false,
            },
        }
    }
}

/// The act-level translation model.
pub struct Qep2Seq {
    model: Seq2Seq,
    input_vocab: Vocab,
    output_vocab: Vocab,
    config: Qep2SeqConfig,
}

impl Qep2Seq {
    /// Build with randomly initialized (learned) decoder embeddings.
    pub fn new(ts: &TrainingSet, config: Qep2SeqConfig) -> Self {
        let model = Seq2Seq::new(Self::nn_config(ts, &config, config.decoder_embed_dim));
        Qep2Seq {
            model,
            input_vocab: ts.input_vocab.clone(),
            output_vocab: ts.output_vocab.clone(),
            config,
        }
    }

    /// Build with frozen pre-trained decoder embeddings.
    pub fn with_embedding(
        ts: &TrainingSet,
        mut config: Qep2SeqConfig,
        embedding: &Embedding,
    ) -> Self {
        config.decoder_embed_dim = embedding.dim;
        let table = embedding.aligned_table(&ts.output_vocab);
        let model = Seq2Seq::new(Self::nn_config(ts, &config, embedding.dim))
            .with_pretrained_decoder_embeddings(table);
        Qep2Seq {
            model,
            input_vocab: ts.input_vocab.clone(),
            output_vocab: ts.output_vocab.clone(),
            config,
        }
    }

    fn nn_config(ts: &TrainingSet, c: &Qep2SeqConfig, dec_dim: usize) -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_vocab: ts.input_vocab.len(),
            output_vocab: ts.output_vocab.len(),
            hidden: c.hidden,
            encoder_embed_dim: c.encoder_embed_dim,
            decoder_embed_dim: dec_dim,
            attention_dim: c.attention_dim,
            share_recurrent_weights: c.share_recurrent_weights,
            init_scale: 0.1,
            seed: c.seed,
        }
    }

    /// Train on `ts` with the paper's 80/20 split; returns the epoch
    /// curves (Figures 6/7 are drawn from these).
    pub fn train(&mut self, ts: &TrainingSet) -> TrainReport {
        let (train, val) = ts.split(0.8, self.config.seed);
        Trainer::new(self.config.train.clone()).train(&mut self.model, &train, &val)
    }

    /// Train with explicit pair lists (ablations).
    pub fn train_pairs(
        &mut self,
        train: &[(Vec<usize>, Vec<usize>)],
        val: &[(Vec<usize>, Vec<usize>)],
    ) -> TrainReport {
        Trainer::new(self.config.train.clone()).train(&mut self.model, train, val)
    }

    /// Translate one act: beam-search decode (paper: beam 4) the tagged
    /// sentence, then substitute the act's concrete values back.
    ///
    /// The model occasionally emits a tag the act has no binding for
    /// (the paper's Exp-5 "wrong token" phenomenon — e.g. an
    /// "intermediate relation" ending on the final act); such leftovers
    /// are replaced with neutral fallbacks so learners never see raw
    /// tags, while the error stays measurable at the tagged level via
    /// [`Qep2Seq::translate_act_tagged`].
    pub fn translate_act(&self, act: &Act, beam: usize) -> String {
        self.translate_act_scratch(act, beam, &mut DecodeScratch::new())
    }

    /// [`Qep2Seq::translate_act`] with caller-owned decode buffers —
    /// batched narration reuses one arena across all acts a worker
    /// translates.
    pub fn translate_act_scratch(
        &self,
        act: &Act,
        beam: usize,
        scratch: &mut DecodeScratch,
    ) -> String {
        let input = self.input_vocab.encode(&act.input_tokens(), false);
        let hyps = beam_search_batched_scratch(&self.model, &input, beam, 60, scratch);
        let tokens = match hyps.first() {
            Some(h) => self.output_vocab.decode(&h.tokens),
            None => Vec::new(),
        };
        let tagged = detokenize(&tokens);
        let mut out = lantern_core::substitute_tags(&tagged, &act.bindings);
        for (tag, fallback) in [
            ("<TN>", "the result"),
            ("<T>", "its input"),
            ("<F>", "the stated condition"),
            ("<C>", "the stated condition"),
            ("<G>", "the grouping attribute"),
            ("<A>", "the sort attribute"),
            ("<I>", "the index"),
        ] {
            while out.contains(tag) {
                out = out.replacen(tag, fallback, 1);
            }
        }
        out
    }

    /// Translate a slice of acts with one shared scratch arena.
    pub fn translate_acts(&self, acts: &[Act], beam: usize) -> Vec<String> {
        let mut scratch = DecodeScratch::new();
        acts.iter()
            .map(|a| self.translate_act_scratch(a, beam, &mut scratch))
            .collect()
    }

    /// Tagged-level translation (before tag substitution) — what BLEU
    /// is computed on.
    pub fn translate_act_tagged(&self, act: &Act, beam: usize) -> Vec<String> {
        let input = self.input_vocab.encode(&act.input_tokens(), false);
        let hyps =
            beam_search_batched_scratch(&self.model, &input, beam, 60, &mut DecodeScratch::new());
        match hyps.first() {
            Some(h) => self.output_vocab.decode(&h.tokens),
            None => Vec::new(),
        }
    }

    /// Corpus BLEU of beam-4 decodes against the rule ground truth over
    /// a set of test acts (Table 5).
    pub fn test_bleu(&self, acts: &[Act], beam: usize) -> f64 {
        let pairs: Vec<(Vec<String>, Vec<String>)> = acts
            .iter()
            .map(|a| (self.translate_act_tagged(a, beam), a.output_tokens()))
            .collect();
        corpus_bleu(&pairs, BleuConfig::default()) * 100.0
    }

    /// Mean validation loss/accuracy on explicit pairs.
    pub fn evaluate_pairs(&self, pairs: &[(Vec<usize>, Vec<usize>)]) -> (f32, f64) {
        lantern_nn::trainer::evaluate_set(&self.model, pairs)
    }

    /// Total parameters.
    pub fn parameter_count(&self) -> usize {
        self.model.parameter_count()
    }

    /// The underlying vocabularies (for reports).
    pub fn vocab_sizes(&self) -> (usize, usize) {
        (self.input_vocab.len(), self.output_vocab.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use lantern_catalog::tpch_catalog;
    use lantern_engine::Database;
    use lantern_pool::default_pg_store;

    fn training_set() -> TrainingSet {
        let db = Database::generate(&tpch_catalog(), 0.0002, 7);
        let store = default_pg_store();
        DatasetBuilder::new(&db, &store)
            .with_random_queries(40, 3)
            .paraphrase(false)
            .build()
    }

    /// End-to-end seq2seq training in tier-1: real plans, real acts,
    /// real vocabularies — shrunk to the `quick` profile. Previously
    /// `#[ignore]`d at the full config (~1 min); the batched GEMM
    /// kernels plus the tiny profile bring it into every test run.
    #[test]
    fn quick_profile_training_reduces_validation_loss() {
        let db = Database::generate(&tpch_catalog(), 0.0002, 7);
        let store = default_pg_store();
        let ts = DatasetBuilder::new(&db, &store)
            .with_random_queries(30, 3)
            .paraphrase(false)
            .build();
        let mut m = Qep2Seq::new(&ts, Qep2SeqConfig::quick());
        let report = m.train(&ts);
        let first = report.epochs.first().unwrap().val_loss;
        let best = report
            .epochs
            .iter()
            .map(|e| e.val_loss)
            .fold(f32::INFINITY, f32::min);
        assert!(best < first * 0.7, "val loss {first} -> {best}");
    }

    #[test]
    #[ignore = "25-epoch training run (~1.5 min) — run with --include-ignored"]
    fn trained_model_translates_an_act_with_concrete_values() {
        let ts = training_set();
        let mut config = Qep2SeqConfig::default();
        config.train.epochs = 25;
        let mut m = Qep2Seq::new(&ts, config);
        m.train(&ts);
        // Take a seq-scan act from the paper's running example.
        let store = default_pg_store();
        let tree = lantern_plan::PlanTree::new(
            "pg",
            lantern_plan::PlanNode::new("Seq Scan").on_relation("publication"),
        );
        let acts = lantern_core::decompose_acts(&tree, &store).unwrap();
        let out = m.translate_act(&acts[0], 4);
        // Concrete relation restored, no tags left.
        assert!(out.contains("publication"), "{out}");
        assert!(!out.contains("<T>"), "{out}");
    }

    #[test]
    #[ignore = "25-epoch training + BLEU scoring (~1.5 min) — run with --include-ignored"]
    fn test_bleu_is_high_after_training_on_same_distribution() {
        let ts = training_set();
        let mut config = Qep2SeqConfig::default();
        config.train.epochs = 25;
        let mut m = Qep2Seq::new(&ts, config);
        m.train(&ts);
        // Re-derive some acts as a "test set" (same distribution).
        let db = Database::generate(&tpch_catalog(), 0.0002, 7);
        let store = default_pg_store();
        let test = DatasetBuilder::new(&db, &store)
            .with_random_queries(8, 99)
            .paraphrase(false)
            .build();
        let acts: Vec<lantern_core::Act> = {
            // Rebuild acts from the same pipeline for scoring.
            let builder = DatasetBuilder::new(&db, &store).with_random_queries(8, 99);
            builder.acts()
        };
        assert!(!acts.is_empty());
        let bleu = m.test_bleu(&acts, 4);
        assert!(bleu > 30.0, "BLEU {bleu}");
        drop(test);
    }

    #[test]
    fn pretrained_embedding_variant_builds() {
        use lantern_embed::{builtin_english_corpus, Embedder, Word2VecTrainer};
        let ts = training_set();
        let emb = Word2VecTrainer {
            dim: 16,
            epochs: 1,
            ..Default::default()
        }
        .train(&builtin_english_corpus(), 1);
        let m = Qep2Seq::with_embedding(&ts, Qep2SeqConfig::default(), &emb);
        assert_eq!(m.config.decoder_embed_dim, 16);
        assert!(m.parameter_count() > 0);
    }
}
