//! The event-driven serving core: one event thread owns accept, read,
//! and write buffering over non-blocking sockets, driven by a raw
//! `epoll` readiness loop on Linux (thin FFI — the workspace is
//! std-only) with a portable `poll(2)` fallback on other Unixes.
//!
//! The division of labour:
//!
//! * the **event thread** accepts connections, accumulates inbound
//!   bytes, frames pipelined requests incrementally
//!   ([`crate::http::frame_request`] + [`crate::http::read_request`]),
//!   dispatches complete requests to the worker pool over a bounded
//!   channel, and writes responses back through per-connection output
//!   queues **in request order**;
//! * the **worker pool** (same bounded pool as the legacy path) runs
//!   `Router::handle` and posts completions back, waking the event
//!   thread through a self-pipe (a `UnixStream` pair).
//!
//! Thousands of idle keep-alive connections therefore cost one `fd` +
//! a few hundred bytes each, not a parked thread. When the dispatch
//! queue is full the event loop **sheds** instead of blocking: the
//! request is answered immediately with `503` + `Retry-After` and a
//! structured error body, and the connection stays usable. Shutdown
//! drains: the listener closes first, in-flight requests finish, and
//! buffered responses are flushed before connections are dropped.

#![cfg(unix)]

use crate::http::{
    encode_response, frame_request, read_request, FrameStatus, Request, Response, REQUEST_ID_HEADER,
};
use crate::router::{error_body_raw, Router};
use crate::server::{ServeConfig, ServeStats};
use lantern_core::Translator;
use lantern_obs::{Recorder, Stage};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Retry-After` seconds advertised on load-shed `503`s.
const SHED_RETRY_AFTER_SECS: u32 = 1;
/// How long shutdown waits for in-flight requests and buffered
/// responses before dropping what remains.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Idle-sweep granularity: the longest the loop sleeps when nothing
/// happens, so idle timeouts are enforced within this bound.
const SWEEP_INTERVAL: Duration = Duration::from_millis(250);

// ---------------------------------------------------------------------
// Readiness backend: epoll on Linux, poll(2) elsewhere.
// ---------------------------------------------------------------------

/// One readiness report from the poller.
struct PollEvent {
    token: u64,
    readable: bool,
    writable: bool,
    /// Error or hangup — the connection is torn down.
    failed: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `epoll` via FFI on the already-linked libc — level
    //! triggered, one epoll instance per server.

    use super::PollEvent;
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`; packed on x86 per the kernel ABI.
    #[derive(Clone, Copy)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut flags = EPOLLRDHUP;
            if read {
                flags |= EPOLLIN;
            }
            if write {
                flags |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: flags,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub fn remove(&mut self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
            let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let events = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    failed: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: a registration table replayed through
    //! `poll(2)` each wait. O(n) per wait, which is fine for the
    //! connection counts a non-Linux dev box sees.

    use super::PollEvent;
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_uint, timeout: c_int) -> c_int;
    }

    pub struct Poller {
        slots: Vec<(RawFd, u64, bool, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { slots: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.slots.push((fd, token, read, write));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            for slot in &mut self.slots {
                if slot.0 == fd {
                    *slot = (fd, token, read, write);
                    return Ok(());
                }
            }
            self.add(fd, token, read, write)
        }

        pub fn remove(&mut self, fd: RawFd) {
            self.slots.retain(|slot| slot.0 != fd);
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .slots
                .iter()
                .map(|&(fd, _, read, write)| PollFd {
                    fd,
                    events: if read { POLLIN } else { 0 } | if write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_uint, ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pollfd, &(_, token, _, _)) in fds.iter().zip(&self.slots) {
                if pollfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pollfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pollfd.revents & POLLOUT != 0,
                    failed: pollfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

use sys::Poller;

// ---------------------------------------------------------------------
// Event-thread <-> worker-pool plumbing.
// ---------------------------------------------------------------------

/// A framed request travelling to the worker pool.
struct Job {
    token: u64,
    seq: u64,
    request: Request,
    keep_alive: bool,
}

/// A finished request travelling back. `response: None` means the
/// handler panicked — the connection is torn down, like the legacy
/// path (one connection per contained panic, never a worker).
struct Completion {
    token: u64,
    seq: u64,
    response: Option<Response>,
    keep_alive: bool,
}

/// Everything the event thread shares with workers and the handle.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    waker: UnixStream,
    stats: Arc<ServeStats>,
    /// The router's recorder: the event thread records the socket
    /// `read`/`write` stages (requests execute on workers, so those
    /// stages can't ride the worker-thread trace).
    obs: Arc<Recorder>,
}

impl Shared {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.waker).write(&[1u8]);
    }
}

// ---------------------------------------------------------------------
// Per-connection state.
// ---------------------------------------------------------------------

struct Conn {
    stream: std::net::TcpStream,
    /// Generation stamp; the full poller token is `gen << 32 | slot`,
    /// so late completions or stale readiness events for a recycled
    /// slot are discarded instead of hitting the wrong peer.
    gen: u64,
    /// Unparsed inbound bytes.
    inbuf: Vec<u8>,
    /// Serialized, not-yet-written outbound bytes.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Next request sequence number to assign on this connection.
    next_seq: u64,
    /// Next sequence number eligible for serialization — responses are
    /// written strictly in request order (HTTP/1.1 pipelining).
    next_write: u64,
    /// Completed responses waiting for an earlier sequence number.
    ready: BTreeMap<u64, (Response, bool)>,
    /// Requests dispatched to the pool and not yet completed.
    in_flight: usize,
    /// No further requests are parsed (close requested, protocol
    /// error, peer EOF, or shutdown drain).
    no_more_reads: bool,
    /// Close once the output buffer drains and nothing is pending.
    close_after_write: bool,
    last_activity: Instant,
}

impl Conn {
    fn has_pending_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    fn is_drained(&self) -> bool {
        self.in_flight == 0 && self.ready.is_empty() && !self.has_pending_output()
    }
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

fn token_of(slot: usize, gen: u64) -> u64 {
    (gen << 32) | slot as u64
}

fn slot_of(token: u64) -> usize {
    (token & 0xFFFF_FFFF) as usize
}

// ---------------------------------------------------------------------
// Entry point.
// ---------------------------------------------------------------------

/// What [`serve_event`] hands back: the joinable threads (event thread
/// first) and the waker the shutdown path invokes.
pub(crate) type EventParts = (Vec<JoinHandle<()>>, Arc<dyn Fn() + Send + Sync>);

/// Spawn the event thread + worker pool over an already-bound
/// listener. Returns the joinable threads (event thread first) and a
/// waker the shutdown path writes to.
pub(crate) fn serve_event<T>(
    listener: TcpListener,
    router: Arc<Router<T>>,
    stats: Arc<ServeStats>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<EventParts>
where
    T: Translator + Send + Sync + 'static,
{
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        completions: Mutex::new(Vec::new()),
        waker: wake_tx,
        stats: Arc::clone(&stats),
        obs: Arc::clone(router.obs()),
    });

    let (job_tx, job_rx) = sync_channel::<Job>(config.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let mut threads = Vec::with_capacity(config.effective_workers() + 1);

    let external_waker: Arc<dyn Fn() + Send + Sync> = {
        let shared = Arc::clone(&shared);
        Arc::new(move || shared.wake())
    };

    for _ in 0..config.effective_workers() {
        let job_rx = Arc::clone(&job_rx);
        let router = Arc::clone(&router);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            worker_loop(&job_rx, &*router, &shared)
        }));
    }

    let event_thread = std::thread::spawn(move || {
        let mut state = EventLoop {
            listener,
            poller: match Poller::new() {
                Ok(p) => p,
                Err(_) => return,
            },
            wake_rx,
            shared,
            job_tx,
            config,
            shutdown,
            conns: Vec::new(),
            free: Vec::new(),
            gen: 0,
            live: 0,
        };
        state.run();
    });
    threads.insert(0, event_thread);
    Ok((threads, external_waker))
}

fn worker_loop<T: Translator>(job_rx: &Mutex<Receiver<Job>>, router: &Router<T>, shared: &Shared) {
    loop {
        let job = match job_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        shared.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| router.handle(&job.request)));
        let response = match outcome {
            Ok(response) => Some(response),
            Err(_) => {
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        if let Ok(mut completions) = shared.completions.lock() {
            completions.push(Completion {
                token: job.token,
                seq: job.seq,
                response,
                keep_alive: job.keep_alive,
            });
        }
        shared.wake();
    }
}

// ---------------------------------------------------------------------
// The loop itself.
// ---------------------------------------------------------------------

struct EventLoop {
    listener: TcpListener,
    poller: Poller,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    job_tx: SyncSender<Job>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gen: u64,
    live: usize,
}

impl EventLoop {
    fn run(&mut self) {
        if self
            .poller
            .add(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false)
            .is_err()
        {
            return;
        }
        if self
            .poller
            .add(self.wake_rx.as_raw_fd(), WAKER_TOKEN, true, false)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        let mut draining_since: Option<Instant> = None;
        loop {
            let shutting_down = self.shutdown.load(Ordering::SeqCst);
            if shutting_down && draining_since.is_none() {
                draining_since = Some(Instant::now());
                self.begin_drain();
            }
            if let Some(since) = draining_since {
                let deadline_passed = since.elapsed() >= DRAIN_DEADLINE;
                if self.live == 0 || deadline_passed {
                    return; // dropping job_tx stops the workers
                }
            }

            events.clear();
            if self.poller.wait(&mut events, SWEEP_INTERVAL).is_err() {
                return;
            }
            // Completions first: they may unblock ordered writes that
            // this batch's writable events then flush.
            self.drain_completions();
            for &PollEvent {
                token,
                readable,
                writable,
                failed,
            } in &events
            {
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => {
                        let mut sink = [0u8; 64];
                        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    }
                    token => self.conn_ready(token, readable, writable, failed),
                }
            }
            self.drain_completions();
            self.sweep_idle();
        }
    }

    /// Shutdown begins: stop accepting, finish what's in flight.
    fn begin_drain(&mut self) {
        self.poller.remove(self.listener.as_raw_fd());
        for slot in 0..self.conns.len() {
            let Some(conn) = &mut self.conns[slot] else {
                continue;
            };
            conn.no_more_reads = true;
            conn.close_after_write = true;
            if conn.is_drained() {
                self.close_conn(slot);
            } else {
                self.update_interest(slot);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared
                        .stats
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    if self.live >= self.config.max_conns.max(1) {
                        // Admission control at the front door: past the
                        // connection cap the socket is closed outright
                        // (clients see a reset, not a silent queue).
                        self.shared
                            .stats
                            .shed_requests
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let slot = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.gen = (self.gen + 1) & 0xFFFF_FFFF;
                    let token = token_of(slot, self.gen);
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(Conn {
                        stream,
                        gen: self.gen,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        outpos: 0,
                        next_seq: 0,
                        next_write: 0,
                        ready: BTreeMap::new(),
                        in_flight: 0,
                        no_more_reads: false,
                        close_after_write: false,
                        last_activity: Instant::now(),
                    });
                    self.live += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, failed: bool) {
        let slot = slot_of(token);
        let gen = token >> 32;
        let Some(Some(conn)) = self.conns.get(slot) else {
            return;
        };
        if conn.gen != gen {
            return; // stale event for a recycled slot
        }
        if failed && !readable {
            self.close_conn(slot);
            return;
        }
        if readable {
            self.read_ready(slot);
        }
        if writable {
            self.write_ready(slot);
        }
    }

    /// Pull everything the socket has, then frame + dispatch requests.
    fn read_ready(&mut self, slot: usize) {
        let mut closed = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.no_more_reads {
                // Still readable but no longer parsing: swallow bytes so
                // level-triggered polling doesn't spin. EOF closes.
                let mut sink = [0u8; 4096];
                loop {
                    match conn.stream.read(&mut sink) {
                        Ok(0) => {
                            closed = true;
                            break;
                        }
                        Ok(_) => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
            } else {
                let started = Instant::now();
                let mut got_bytes = false;
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.inbuf.extend_from_slice(&chunk[..n]);
                            conn.last_activity = Instant::now();
                            got_bytes = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
                if got_bytes {
                    self.shared
                        .obs
                        .record_stage(Stage::Read, started.elapsed().as_nanos() as u64);
                }
            }
        }
        self.parse_and_dispatch(slot);
        if closed {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            conn.no_more_reads = true;
            conn.close_after_write = true;
            if conn.is_drained() {
                self.close_conn(slot);
                return;
            }
        }
        self.flush(slot);
    }

    /// Frame as many pipelined requests as the buffer holds and hand
    /// them to the pool (or shed).
    fn parse_and_dispatch(&mut self, slot: usize) {
        loop {
            let shutting_down = self.shutdown.load(Ordering::SeqCst);
            let frame = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                if conn.no_more_reads || conn.inbuf.is_empty() {
                    return;
                }
                match frame_request(&conn.inbuf, self.config.max_body_bytes) {
                    FrameStatus::Incomplete => return,
                    FrameStatus::Complete { len } => {
                        let frame: Vec<u8> = conn.inbuf.drain(..len).collect();
                        frame
                    }
                }
            };
            match read_request(&mut &frame[..], self.config.max_body_bytes) {
                Ok(request) => {
                    let keep_alive = request.keep_alive && !shutting_down;
                    let (token, seq, pipelined) = {
                        let Some(conn) = self.conns[slot].as_mut() else {
                            return;
                        };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        if !keep_alive {
                            conn.no_more_reads = true;
                        }
                        (token_of(slot, conn.gen), seq, seq > conn.next_write)
                    };
                    if pipelined {
                        self.shared
                            .stats
                            .pipelined_requests
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    match self.job_tx.try_send(Job {
                        token,
                        seq,
                        request,
                        keep_alive,
                    }) {
                        Ok(()) => {
                            self.shared
                                .stats
                                .queue_depth
                                .fetch_add(1, Ordering::Relaxed);
                            if let Some(conn) = self.conns[slot].as_mut() {
                                conn.in_flight += 1;
                            }
                        }
                        Err(TrySendError::Full(job)) => {
                            // Admission control: answer 503 now instead
                            // of blocking the event loop on a full
                            // queue. The connection stays usable.
                            self.shared
                                .stats
                                .shed_requests
                                .fetch_add(1, Ordering::Relaxed);
                            self.shared
                                .stats
                                .error_responses
                                .fetch_add(1, Ordering::Relaxed);
                            // Shed responses never reach the router, so
                            // the request id is resolved here — kept
                            // from the request when present, minted
                            // otherwise — and stays traceable.
                            let id = match job.request.header(REQUEST_ID_HEADER) {
                                Some(id) if !id.is_empty() => id.to_string(),
                                _ => self.shared.obs.mint_id(),
                            };
                            let body = error_body_raw(
                                "overloaded",
                                "dispatch queue is full; retry shortly",
                                503,
                            );
                            let response = Response::json(503, body.to_string_compact())
                                .with_header("Retry-After", SHED_RETRY_AFTER_SECS.to_string())
                                .with_request_id(&id);
                            self.complete(slot, seq, Some(response), keep_alive);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.close_conn(slot);
                            return;
                        }
                    }
                }
                Err(err) => {
                    // Same contract as the legacy path: protocol errors
                    // get a structured best-effort reply, then the
                    // connection closes.
                    let seq = {
                        let Some(conn) = self.conns[slot].as_mut() else {
                            return;
                        };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.no_more_reads = true;
                        conn.inbuf.clear();
                        seq
                    };
                    if let Some(status) = err.status() {
                        self.shared
                            .stats
                            .error_responses
                            .fetch_add(1, Ordering::Relaxed);
                        let body = error_body_raw("http", &err.message(), status);
                        let response = Response::json(status, body.to_string_compact());
                        self.complete(slot, seq, Some(response), false);
                    } else {
                        self.close_conn(slot);
                    }
                    return;
                }
            }
            let no_more = self.conns[slot]
                .as_ref()
                .map(|c| c.no_more_reads)
                .unwrap_or(true);
            if no_more {
                return;
            }
        }
    }

    /// Worker completions: route each back to its connection, preserve
    /// request order, then flush.
    fn drain_completions(&mut self) {
        let completions = {
            let Ok(mut guard) = self.shared.completions.lock() else {
                return;
            };
            std::mem::take(&mut *guard)
        };
        for completion in completions {
            let slot = slot_of(completion.token);
            let gen = completion.token >> 32;
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                continue; // connection died while the request ran
            };
            if conn.gen != gen {
                continue;
            }
            conn.in_flight = conn.in_flight.saturating_sub(1);
            match completion.response {
                Some(response) => {
                    self.complete(slot, completion.seq, Some(response), completion.keep_alive);
                    self.flush(slot);
                }
                None => {
                    // Handler panic: drop the connection, like the
                    // legacy path — the client sees a reset, pipelined
                    // siblings die with it, the worker survives.
                    self.close_conn(slot);
                }
            }
        }
    }

    /// Insert a finished response and serialize every response that is
    /// now next in request order.
    fn complete(&mut self, slot: usize, seq: u64, response: Option<Response>, keep_alive: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if let Some(response) = response {
            conn.ready.insert(seq, (response, keep_alive));
        }
        let started = Instant::now();
        let mut encoded = false;
        while let Some((response, keep_alive)) = conn.ready.remove(&conn.next_write) {
            encode_response(&mut conn.outbuf, &response, keep_alive);
            conn.next_write += 1;
            encoded = true;
            if !keep_alive {
                conn.no_more_reads = true;
                conn.close_after_write = true;
                conn.ready.clear();
                break;
            }
        }
        if encoded {
            self.shared
                .obs
                .record_stage(Stage::Write, started.elapsed().as_nanos() as u64);
        }
    }

    /// Write as much buffered output as the socket takes.
    fn flush(&mut self, slot: usize) {
        let mut close = false;
        let mut broken = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            while conn.outpos < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if !conn.has_pending_output() {
                conn.outbuf.clear();
                conn.outpos = 0;
                if conn.close_after_write && conn.in_flight == 0 && conn.ready.is_empty() {
                    close = true;
                }
            }
        }
        if broken || close {
            self.close_conn(slot);
        } else {
            self.update_interest(slot);
        }
    }

    fn write_ready(&mut self, slot: usize) {
        self.flush(slot);
    }

    fn update_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_ref() else {
            return;
        };
        let read = !conn.no_more_reads || !conn.close_after_write;
        let write = conn.has_pending_output();
        let token = token_of(slot, conn.gen);
        let fd = conn.stream.as_raw_fd();
        let _ = self.poller.modify(fd, token, read, write);
    }

    /// Close idle connections past the configured read timeout —
    /// including slow-loris peers parked on a partial request head.
    fn sweep_idle(&mut self) {
        let timeout = self.config.read_timeout;
        if timeout.is_zero() {
            return;
        }
        for slot in 0..self.conns.len() {
            let expired = match &self.conns[slot] {
                Some(conn) => {
                    conn.in_flight == 0
                        && conn.ready.is_empty()
                        && !conn.has_pending_output()
                        && conn.last_activity.elapsed() >= timeout
                }
                None => false,
            };
            if expired {
                self.close_conn(slot);
            }
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.poller.remove(conn.stream.as_raw_fd());
            self.free.push(slot);
            self.live -= 1;
        }
    }
}
