//! Soak/load driver: replay a document schedule against a live
//! narration server from N concurrent clients, measuring end-to-end
//! latency percentiles and the cache hit ratio observed through
//! `GET /stats`.
//!
//! The driver is workload-agnostic — it takes a plain `&[String]` of
//! plan documents, so any schedule source works (the `lantern-gen`
//! crate's duplicate-rate stream is the intended one; the driver lives
//! here rather than there to keep the crate DAG acyclic). The report
//! serializes to JSON ([`SoakReport::to_json`]) so CI lanes and bench
//! trajectories can consume it without scraping logs.

use crate::client::HttpClient;
use lantern_obs::{parse_exposition, snapshot_from_samples, HistogramSnapshot};
use lantern_text::json::JsonValue;
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::time::Instant;

/// Soak run parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent client connections (clamped to at least 1). The
    /// schedule is partitioned round-robin, so every client sees the
    /// same fresh/duplicate mix as the whole schedule.
    pub clients: usize,
    /// Requests each client keeps in flight on its connection
    /// (clamped to at least 1). At 1 the driver is strictly
    /// request/response; above 1 it sends bursts of `pipeline`
    /// requests back to back and then reads the responses, exercising
    /// the server's HTTP/1.1 pipelining path.
    pub pipeline: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 4,
            pipeline: 1,
        }
    }
}

/// Latency summary over all attempted requests, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    pub p50_us: u64,
    pub p90_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub mean_us: u64,
}

/// Cache counter movement across the run (absent when the target
/// server has no cache configured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDelta {
    /// LRU hits during the run (includes byte-identical re-submissions
    /// answered via the doc digest).
    pub hits: u64,
    /// LRU misses during the run.
    pub misses: u64,
    /// `hits / (hits + misses)`; for a well-mixed schedule this tracks
    /// the configured duplicate rate.
    pub hit_ratio: f64,
}

/// Server-side latency over the run, rebuilt from the target's own
/// `GET /metrics` request histogram (scraped before and after, delta'd
/// and merged across targets). Absent when any target has metrics
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerLatency {
    /// Server-measured median dispatch latency, microseconds.
    pub p50_us: u64,
    /// Server-measured p99 dispatch latency, microseconds.
    pub p99_us: u64,
    /// Requests the servers recorded during the run (slightly above
    /// the schedule length: the driver's own stats/metrics probes are
    /// requests too).
    pub count: u64,
    /// Whether the server-side percentiles bracket the client-observed
    /// ones from below: server dispatch time is a subset of the client
    /// round trip, so `p ≤ client_p × grid-and-jitter slack` must hold
    /// at p50 and p99. A `false` here means the two latency pipelines
    /// disagree about the same traffic.
    pub bracket_ok: bool,
}

/// Server counter movement across the run, sampled from `GET /stats`
/// before and after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerDelta {
    /// Requests refused by admission control (`503` + `Retry-After`).
    pub shed_requests: u64,
    /// Requests the server saw arrive pipelined behind an unanswered
    /// one.
    pub pipelined_requests: u64,
}

/// The machine-readable result of one soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Requests attempted (= schedule length).
    pub requests: usize,
    /// Concurrent clients used.
    pub clients: usize,
    /// Pipeline depth each client ran at.
    pub pipeline: usize,
    /// `503` responses observed by the clients (the server's
    /// load-shedding answer).
    pub shed: u64,
    /// Server-side counter movement over the run.
    pub server: ServerDelta,
    /// Wall-clock duration of the request phase, milliseconds.
    pub duration_ms: f64,
    /// Attempted requests per second.
    pub throughput_rps: f64,
    /// Responses with a 2xx status.
    pub ok: u64,
    /// Everything else: non-2xx responses and transport failures.
    pub errors: u64,
    /// Response count per HTTP status (status 0 = transport failure).
    pub statuses: BTreeMap<u16, u64>,
    /// Latency percentiles over attempted requests.
    pub latency: LatencySummary,
    /// Cache counter movement, when the server reports a cache.
    pub cache: Option<CacheDelta>,
    /// Server-side latency cross-check, when the server exposes
    /// `/metrics`.
    pub server_latency: Option<ServerLatency>,
}

impl SoakReport {
    /// The report as a JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj = BTreeMap::new();
        obj.insert(
            "requests".to_string(),
            JsonValue::Number(self.requests as f64),
        );
        obj.insert(
            "clients".to_string(),
            JsonValue::Number(self.clients as f64),
        );
        obj.insert(
            "pipeline".to_string(),
            JsonValue::Number(self.pipeline as f64),
        );
        obj.insert("shed".to_string(), JsonValue::Number(self.shed as f64));
        let mut server = BTreeMap::new();
        server.insert(
            "shed_requests".to_string(),
            JsonValue::Number(self.server.shed_requests as f64),
        );
        server.insert(
            "pipelined_requests".to_string(),
            JsonValue::Number(self.server.pipelined_requests as f64),
        );
        obj.insert("server".to_string(), JsonValue::Object(server));
        obj.insert(
            "duration_ms".to_string(),
            JsonValue::Number(self.duration_ms),
        );
        obj.insert(
            "throughput_rps".to_string(),
            JsonValue::Number(self.throughput_rps),
        );
        obj.insert("ok".to_string(), JsonValue::Number(self.ok as f64));
        obj.insert("errors".to_string(), JsonValue::Number(self.errors as f64));
        let statuses = self
            .statuses
            .iter()
            .map(|(status, count)| (status.to_string(), JsonValue::Number(*count as f64)))
            .collect();
        obj.insert("statuses".to_string(), JsonValue::Object(statuses));
        let mut latency = BTreeMap::new();
        for (key, value) in [
            ("p50_us", self.latency.p50_us),
            ("p90_us", self.latency.p90_us),
            ("p99_us", self.latency.p99_us),
            ("max_us", self.latency.max_us),
            ("mean_us", self.latency.mean_us),
        ] {
            latency.insert(key.to_string(), JsonValue::Number(value as f64));
        }
        obj.insert("latency_us".to_string(), JsonValue::Object(latency));
        if let Some(cache) = &self.cache {
            let mut c = BTreeMap::new();
            c.insert("hits".to_string(), JsonValue::Number(cache.hits as f64));
            c.insert("misses".to_string(), JsonValue::Number(cache.misses as f64));
            c.insert("hit_ratio".to_string(), JsonValue::Number(cache.hit_ratio));
            obj.insert("cache".to_string(), JsonValue::Object(c));
        }
        if let Some(server_latency) = &self.server_latency {
            let mut s = BTreeMap::new();
            s.insert(
                "p50_us".to_string(),
                JsonValue::Number(server_latency.p50_us as f64),
            );
            s.insert(
                "p99_us".to_string(),
                JsonValue::Number(server_latency.p99_us as f64),
            );
            s.insert(
                "count".to_string(),
                JsonValue::Number(server_latency.count as f64),
            );
            s.insert(
                "bracket_ok".to_string(),
                JsonValue::Bool(server_latency.bracket_ok),
            );
            obj.insert("server_latency".to_string(), JsonValue::Object(s));
        }
        JsonValue::Object(obj)
    }

    /// The report as pretty-printed JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}

/// Replay `docs` against the server at `addr` (one `POST /narrate` per
/// document) from `config.clients` concurrent connections, and compute
/// the report. Cache counters are sampled from `GET /stats` before and
/// after the run, so the hit ratio reflects *this* workload even
/// against a warm server.
pub fn run_soak(addr: SocketAddr, docs: &[String], config: &SoakConfig) -> io::Result<SoakReport> {
    run_soak_multi(&[addr], docs, config)
}

/// [`run_soak`] against several servers at once: client `i` connects to
/// `addrs[i % addrs.len()]`, and the cache/server counter deltas are
/// summed across every address. Driving N independent replicas with
/// one schedule (spray, no shard affinity) is the baseline a
/// fingerprint-sharded cluster gets compared against — same machines,
/// same traffic, no routing intelligence.
pub fn run_soak_multi(
    addrs: &[SocketAddr],
    docs: &[String],
    config: &SoakConfig,
) -> io::Result<SoakReport> {
    if addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "run_soak_multi needs at least one address",
        ));
    }
    // With several targets, at least one client per target so every
    // address sees traffic.
    let clients = config.clients.max(addrs.len()).min(docs.len().max(1));
    let pipeline = config.pipeline.max(1);
    let before = sample_stats_multi(addrs)?;
    let metrics_before = sample_request_histogram(addrs);

    let started = Instant::now();
    let mut samples: Vec<(u64, u16)> = Vec::with_capacity(docs.len());
    std::thread::scope(|scope| -> io::Result<()> {
        let mut workers = Vec::with_capacity(clients);
        for worker in 0..clients {
            // Round-robin partition: every client's slice preserves the
            // schedule's global duplicate mix.
            let schedule: Vec<&String> = docs.iter().skip(worker).step_by(clients).collect();
            let addr = addrs[worker % addrs.len()];
            workers.push(scope.spawn(move || drive_client(addr, &schedule, pipeline)));
        }
        for worker in workers {
            let worker_samples = worker
                .join()
                .map_err(|_| io::Error::other("soak client panicked"))??;
            samples.extend(worker_samples);
        }
        Ok(())
    })?;
    let duration = started.elapsed();

    let after = sample_stats_multi(addrs)?;
    let metrics_after = sample_request_histogram(addrs);
    let server = ServerDelta {
        shed_requests: after.shed.saturating_sub(before.shed),
        pipelined_requests: after.pipelined.saturating_sub(before.pipelined),
    };
    let cache = match (before.cache, after.cache) {
        (Some((h0, m0)), Some((h1, m1))) => {
            let hits = h1.saturating_sub(h0);
            let misses = m1.saturating_sub(m0);
            let total = hits + misses;
            Some(CacheDelta {
                hits,
                misses,
                hit_ratio: if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                },
            })
        }
        _ => None,
    };

    let mut statuses = BTreeMap::new();
    let mut ok = 0u64;
    for (_, status) in &samples {
        *statuses.entry(*status).or_insert(0u64) += 1;
        if (200..300).contains(status) {
            ok += 1;
        }
    }
    let duration_ms = duration.as_secs_f64() * 1e3;
    let latency = summarize(samples.iter().map(|(us, _)| *us).collect());
    let server_latency = server_latency_check(metrics_before, metrics_after, &latency);
    Ok(SoakReport {
        requests: docs.len(),
        clients,
        pipeline,
        shed: statuses.get(&503).copied().unwrap_or(0),
        server,
        duration_ms,
        throughput_rps: if duration_ms > 0.0 {
            samples.len() as f64 / (duration_ms / 1e3)
        } else {
            0.0
        },
        ok,
        errors: samples.len() as u64 - ok,
        statuses,
        latency,
        cache,
        server_latency,
    })
}

/// Cross-check the client-observed percentiles against the servers'
/// own request histograms: delta the before/after scrapes, merge
/// across targets, and verify the server numbers sit below the client
/// ones. The tolerance covers the histogram's √2 bucket grid (a
/// server-side value is reported as its bucket's upper bound) plus
/// scheduling jitter, with an absolute floor for microsecond-scale
/// cache-hit runs.
fn server_latency_check(
    before: Option<HistogramSnapshot>,
    after: Option<HistogramSnapshot>,
    client: &LatencySummary,
) -> Option<ServerLatency> {
    let delta = after?.delta_since(&before?);
    if delta.count == 0 {
        return None;
    }
    let p50_us = delta.percentile(0.50) / 1_000;
    let p99_us = delta.percentile(0.99) / 1_000;
    let below = |server_us: u64, client_us: u64| server_us as f64 <= client_us as f64 * 2.0 + 500.0;
    Some(ServerLatency {
        p50_us,
        p99_us,
        count: delta.count,
        bracket_ok: below(p50_us, client.p50_us) && below(p99_us, client.p99_us),
    })
}

/// Merge the `/metrics` request histogram across every target. `None`
/// when any target fails to answer the scrape (metrics disabled or
/// unreachable) — the cross-check needs the whole fleet's view.
fn sample_request_histogram(addrs: &[SocketAddr]) -> Option<HistogramSnapshot> {
    let mut merged = HistogramSnapshot::default();
    for addr in addrs {
        let mut client = HttpClient::connect(*addr).ok()?;
        let resp = client.get("/metrics").ok()?;
        if resp.status != 200 {
            return None;
        }
        let parsed = parse_exposition(&resp.body);
        // A fresh server renders no bucket lines yet: an empty
        // snapshot, not a missing endpoint.
        if let Some(snap) =
            snapshot_from_samples(&parsed.samples, lantern_obs::METRIC_REQUEST_SECONDS, &[])
        {
            merged.merge(&snap);
        }
    }
    Some(merged)
}

/// One client's request loop: time every `POST /narrate`, record
/// transport failures as status 0, and reconnect once after a failure
/// so a single dropped connection doesn't void the rest of the slice.
///
/// At `pipeline > 1` the schedule is sent in bursts: `pipeline`
/// requests written back to back, then their responses collected in
/// order. Burst latencies are measured from the burst's first write,
/// so they reflect the queueing a pipelined request actually sees.
fn drive_client(
    addr: SocketAddr,
    schedule: &[&String],
    pipeline: usize,
) -> io::Result<Vec<(u64, u16)>> {
    let mut client = HttpClient::connect(addr)?;
    let mut samples = Vec::with_capacity(schedule.len());
    for burst in schedule.chunks(pipeline.max(1)) {
        let started = Instant::now();
        let mut sent = 0usize;
        for doc in burst {
            if client.send("POST", "/narrate", Some(doc)).is_err() {
                break;
            }
            sent += 1;
        }
        let mut answered = 0usize;
        let mut failed = sent < burst.len();
        while answered < sent {
            match client.read_response() {
                Ok(resp) => {
                    samples.push((started.elapsed().as_micros() as u64, resp.status));
                    answered += 1;
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        // Requests never sent, or whose responses died with the
        // connection, are transport failures (status 0).
        for _ in answered..burst.len() {
            samples.push((started.elapsed().as_micros() as u64, 0));
        }
        if failed {
            client = HttpClient::connect(addr)?;
        }
    }
    Ok(samples)
}

/// One `GET /stats` sample: the cache counters (absent on an uncached
/// server) plus the admission-control counters.
struct StatsSample {
    cache: Option<(u64, u64)>,
    shed: u64,
    pipelined: u64,
}

/// Sum one [`StatsSample`] per address: cache counters are `Some` when
/// any server reports a cache (uncached servers contribute zero).
fn sample_stats_multi(addrs: &[SocketAddr]) -> io::Result<StatsSample> {
    let mut total = StatsSample {
        cache: None,
        shed: 0,
        pipelined: 0,
    };
    for addr in addrs {
        let sample = sample_stats(*addr)?;
        total.shed += sample.shed;
        total.pipelined += sample.pipelined;
        if let Some((hits, misses)) = sample.cache {
            let (h, m) = total.cache.unwrap_or((0, 0));
            total.cache = Some((h + hits, m + misses));
        }
    }
    Ok(total)
}

fn sample_stats(addr: SocketAddr) -> io::Result<StatsSample> {
    let mut client = HttpClient::connect(addr)?;
    let resp = client.get("/stats")?;
    let value = resp
        .json()
        .map_err(|e| io::Error::other(format!("/stats body is not JSON: {e}")))?;
    let cache_counter = |name: &str| {
        value
            .get("cache")
            .and_then(|c| c.get(name))
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
    };
    let counter = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .unwrap_or(0)
    };
    Ok(StatsSample {
        cache: match (cache_counter("hits"), cache_counter("misses")) {
            (Some(hits), Some(misses)) => Some((hits, misses)),
            _ => None,
        },
        shed: counter("shed_requests"),
        pipelined: counter("pipelined_requests"),
    })
}

/// Percentile summary of a latency sample set.
fn summarize(mut latencies: Vec<u64>) -> LatencySummary {
    if latencies.is_empty() {
        return LatencySummary {
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
            mean_us: 0,
        };
    }
    latencies.sort_unstable();
    let percentile = |q: f64| {
        let rank = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[rank]
    };
    LatencySummary {
        p50_us: percentile(0.50),
        p90_us: percentile(0.90),
        p99_us: percentile(0.99),
        max_us: *latencies.last().unwrap(),
        mean_us: (latencies.iter().sum::<u64>() as f64 / latencies.len() as f64) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve_with_cache, ServeConfig};
    use lantern_cache::{CacheConfig, CacheControl, CachedTranslator};
    use lantern_core::RuleTranslator;
    use lantern_pool::default_mssql_store;
    use std::sync::Arc;

    const DOC_A: &str = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
    const DOC_B: &str = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "part"}}"#;

    #[test]
    fn percentiles_of_known_distribution() {
        let s = summarize((1..=100u64).collect());
        assert_eq!(s.p50_us, 51); // round(99 * 0.5) = rank 50 → value 51
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50);
        let empty = summarize(Vec::new());
        assert_eq!(empty.max_us, 0);
    }

    #[test]
    fn soak_against_cached_server_reports_hit_ratio() {
        let cached = Arc::new(CachedTranslator::new(
            RuleTranslator::new(default_mssql_store()),
            CacheConfig::default(),
        ));
        let handle = serve_with_cache(
            Arc::clone(&cached),
            Some(cached as Arc<dyn CacheControl + Send + Sync>),
            "127.0.0.1:0",
            ServeConfig::default(),
        )
        .unwrap();

        // 2 unique documents in 6 requests: 2 misses + 4 hits. One
        // client keeps the hit accounting deterministic (no in-flight
        // coalescing races).
        let docs: Vec<String> = [DOC_A, DOC_A, DOC_B, DOC_A, DOC_B, DOC_A]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let report = run_soak(
            handle.addr(),
            &docs,
            &SoakConfig {
                clients: 1,
                pipeline: 1,
            },
        )
        .unwrap();
        assert_eq!(report.requests, 6);
        assert_eq!(report.ok, 6, "statuses: {:?}", report.statuses);
        assert_eq!(report.errors, 0);
        assert!(report.latency.p50_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.max_us);
        let cache = report.cache.expect("cached server reports a delta");
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 4);
        assert!((cache.hit_ratio - 4.0 / 6.0).abs() < 1e-9);

        // The server's own histogram saw the run (plus the driver's
        // stats/metrics probes) and its percentiles agree with the
        // client-observed ones.
        let server_latency = report
            .server_latency
            .expect("metrics-on server cross-check");
        assert!(server_latency.count >= 6, "{server_latency:?}");
        assert!(server_latency.p50_us <= server_latency.p99_us);
        assert!(
            server_latency.bracket_ok,
            "{server_latency:?} vs {:?}",
            report.latency
        );

        // The JSON form carries every headline number.
        let json = report.to_json_value();
        assert_eq!(json.get("requests").and_then(JsonValue::as_f64), Some(6.0));
        assert!(json
            .get("latency_us")
            .and_then(|l| l.get("p99_us"))
            .and_then(JsonValue::as_f64)
            .is_some());
        assert_eq!(
            json.get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            json.get("server_latency")
                .and_then(|s| s.get("bracket_ok"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );

        handle.shutdown().unwrap();
    }

    #[test]
    fn soak_multi_sums_counters_across_replicas() {
        let boot = || {
            let cached = Arc::new(CachedTranslator::new(
                RuleTranslator::new(default_mssql_store()),
                CacheConfig::default(),
            ));
            serve_with_cache(
                Arc::clone(&cached),
                Some(cached as Arc<dyn CacheControl + Send + Sync>),
                "127.0.0.1:0",
                ServeConfig::default(),
            )
            .unwrap()
        };
        let (a, b) = (boot(), boot());

        // Two clients, one per server; round-robin hands each client
        // the same doc twice: every server sees 1 miss + 1 hit.
        let docs = vec![DOC_A.to_string(); 4];
        let report = run_soak_multi(
            &[a.addr(), b.addr()],
            &docs,
            &SoakConfig {
                clients: 2,
                pipeline: 1,
            },
        )
        .unwrap();
        assert_eq!(report.ok, 4, "statuses: {:?}", report.statuses);
        let cache = report.cache.expect("summed cache delta");
        assert_eq!(cache.misses, 2, "one cold miss per replica");
        assert_eq!(cache.hits, 2);

        // `clients` is raised to cover every address.
        let report = run_soak_multi(
            &[a.addr(), b.addr()],
            &docs,
            &SoakConfig {
                clients: 1,
                pipeline: 1,
            },
        )
        .unwrap();
        assert_eq!(report.clients, 2);

        assert!(run_soak_multi(&[], &docs, &SoakConfig::default()).is_err());
        a.shutdown().unwrap();
        b.shutdown().unwrap();
    }

    #[test]
    fn soak_against_uncached_metrics_off_server_skips_both_deltas() {
        let handle = crate::server::serve(
            RuleTranslator::new(default_mssql_store()),
            "127.0.0.1:0",
            ServeConfig {
                metrics: false,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let docs = vec![DOC_A.to_string(); 4];
        let report = run_soak(
            handle.addr(),
            &docs,
            &SoakConfig {
                clients: 2,
                pipeline: 1,
            },
        )
        .unwrap();
        assert_eq!(report.ok, 4);
        assert!(report.cache.is_none());
        assert!(
            report.server_latency.is_none(),
            "no /metrics, no cross-check"
        );
        assert!(report.to_json_value().get("server_latency").is_none());
        handle.shutdown().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn pipelined_soak_reports_server_side_pipelining() {
        use lantern_core::{LanternError, NarrationRequest, NarrationResponse, Translator};

        // Slow enough that a burst's trailing requests are guaranteed
        // to arrive while the first is still being handled.
        struct Slow(RuleTranslator);
        impl Translator for Slow {
            fn backend(&self) -> &str {
                "slow"
            }
            fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
                std::thread::sleep(std::time::Duration::from_millis(10));
                self.0.narrate(req)
            }
        }

        let handle = crate::server::serve(
            Slow(RuleTranslator::new(default_mssql_store())),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let docs = vec![DOC_A.to_string(); 8];
        let report = run_soak(
            handle.addr(),
            &docs,
            &SoakConfig {
                clients: 1,
                pipeline: 4,
            },
        )
        .unwrap();
        assert_eq!(report.ok, 8, "statuses: {:?}", report.statuses);
        assert_eq!(report.pipeline, 4);
        assert_eq!(report.shed, 0);
        assert!(
            report.server.pipelined_requests >= 3,
            "server delta: {:?}",
            report.server
        );
        let json = report.to_json_value();
        assert_eq!(json.get("pipeline").and_then(JsonValue::as_f64), Some(4.0));
        assert!(
            json.get("server")
                .and_then(|s| s.get("pipelined_requests"))
                .and_then(JsonValue::as_f64)
                .unwrap()
                >= 3.0
        );
        handle.shutdown().unwrap();
    }
}
