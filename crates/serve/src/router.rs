//! Request routing: maps parsed HTTP requests onto the
//! [`Translator`] API and renders responses in the service wire
//! format.
//!
//! The wire format (see `docs/SERVING.md`):
//!
//! * success — `{"backend": "...", "text": "...", "narration":
//!   {"steps": [...]}}` where `narration` is exactly
//!   [`Narration::to_json`](lantern_core::Narration::to_json);
//! * failure — `{"error": {"kind": "...", "message": "...",
//!   "status": N}}` with the status code duplicated in the HTTP
//!   status line, mapped through [`LanternError::http_status`].

use crate::catalog::{CatalogApplyError, CatalogControl};
use crate::http::{Request, Response, REQUEST_ID_HEADER};
use crate::server::ServeStats;
use lantern_cache::{CacheControl, CacheStatsSnapshot};
use lantern_core::{
    DiffRequest, DiffResponse, DiffTranslator, LanternError, NarrationRequest, NarrationResponse,
    PlanSource, RenderStyle, Translator,
};
use lantern_obs::{span, Recorder, RecorderConfig, Stage};
use lantern_text::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The `{"error": {...}}` JSON body for a narration failure.
pub fn error_body(err: &LanternError) -> JsonValue {
    error_body_raw(err.kind(), &err.to_string(), err.http_status())
}

/// An error body for failures that never reached the translator
/// (routing and HTTP protocol errors).
pub fn error_body_raw(kind: &str, message: &str, status: u16) -> JsonValue {
    let mut inner = BTreeMap::new();
    inner.insert("kind".to_string(), JsonValue::String(kind.to_string()));
    inner.insert(
        "message".to_string(),
        JsonValue::String(message.to_string()),
    );
    inner.insert("status".to_string(), JsonValue::Number(status as f64));
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), JsonValue::Object(inner));
    JsonValue::Object(obj)
}

/// A complete HTTP error response (body + status) for a narration
/// failure.
pub fn error_response(err: &LanternError) -> Response {
    Response::json(err.http_status(), error_body(err).to_string_compact())
}

fn narration_value(resp: &NarrationResponse) -> JsonValue {
    let mut obj = BTreeMap::new();
    obj.insert(
        "backend".to_string(),
        JsonValue::String(resp.backend.clone()),
    );
    obj.insert("text".to_string(), JsonValue::String(resp.text.clone()));
    obj.insert("narration".to_string(), resp.narration.to_json_value());
    JsonValue::Object(obj)
}

fn parse_style(raw: &str) -> Result<RenderStyle, String> {
    // Query values arrive percent-decoded, so an encoded trailing
    // space (`?style=bulleted%20` or `?style=bulleted+`) shows up
    // here as whitespace — forgive it rather than 400ing.
    match raw.trim() {
        "numbered" => Ok(RenderStyle::Numbered),
        "bulleted" => Ok(RenderStyle::Bulleted),
        "paragraph" => Ok(RenderStyle::Paragraph),
        other => Err(format!(
            "unknown style {other:?} (expected numbered, bulleted, or paragraph)"
        )),
    }
}

/// Routes requests for one service instance: holds the translator, the
/// shared counters, the derived backend name, and — when the service
/// was built with a narration cache — the cache's admin surface
/// (`?nocache=1` bypass, `POST /cache/clear`, counters in `/stats`).
pub struct Router<T> {
    translator: T,
    stats: std::sync::Arc<ServeStats>,
    cache: Option<Arc<dyn CacheControl + Send + Sync>>,
    diff: Option<Arc<dyn DiffTranslator + Send + Sync>>,
    catalog: Option<Arc<dyn CatalogControl + Send + Sync>>,
    obs: Arc<Recorder>,
}

/// Decrements the in-flight gauge when the handler returns (or
/// unwinds — a leaked gauge would report phantom load forever).
struct InFlightGuard<'a>(&'a ServeStats);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.requests_in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<T: Translator> Router<T> {
    /// A router over `translator`, recording into `stats`, with no
    /// cache admin surface.
    pub fn new(translator: T, stats: std::sync::Arc<ServeStats>) -> Self {
        Self::with_parts(translator, stats, None, None)
    }

    /// A router whose translator fronts a narration cache: `cache` is
    /// the same object (or a wrapper over it), exposing bypass, stats,
    /// and clear.
    pub fn with_cache(
        translator: T,
        stats: std::sync::Arc<ServeStats>,
        cache: Arc<dyn CacheControl + Send + Sync>,
    ) -> Self {
        Self::with_parts(translator, stats, Some(cache), None)
    }

    /// The full constructor: optional cache admin surface, optional
    /// plan-diff backend (routing `/narrate/diff` and
    /// `/narrate/diff/batch` when present).
    pub fn with_parts(
        translator: T,
        stats: std::sync::Arc<ServeStats>,
        cache: Option<Arc<dyn CacheControl + Send + Sync>>,
        diff: Option<Arc<dyn DiffTranslator + Send + Sync>>,
    ) -> Self {
        Self::with_catalog(translator, stats, cache, diff, None)
    }

    /// [`Router::with_parts`], plus an optional catalog admin surface
    /// (routing `GET /catalog` and `POST /catalog/apply` when present)
    /// so a cluster coordinator can replicate POEM mutations to this
    /// node.
    pub fn with_catalog(
        translator: T,
        stats: std::sync::Arc<ServeStats>,
        cache: Option<Arc<dyn CacheControl + Send + Sync>>,
        diff: Option<Arc<dyn DiffTranslator + Send + Sync>>,
        catalog: Option<Arc<dyn CatalogControl + Send + Sync>>,
    ) -> Self {
        Router {
            translator,
            stats,
            cache,
            diff,
            catalog,
            obs: Arc::new(Recorder::new(RecorderConfig::default())),
        }
    }

    /// Replace the default observability recorder (the server builds
    /// one from [`ServeConfig`](crate::server::ServeConfig) so
    /// `--metrics-off` / `--slow-log-ms` reach the router).
    pub fn with_obs(mut self, obs: Arc<Recorder>) -> Self {
        self.obs = obs;
        self
    }

    /// The router's observability recorder (shared with the serving
    /// core, which records the `read`/`write` stages).
    pub fn obs(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// Dispatch one parsed request to its handler.
    ///
    /// Every response carries an `x-lantern-request-id` header: the
    /// value of the incoming header when the client (or a coordinator
    /// hop) supplied one, else freshly minted here. The whole handler
    /// runs under a stage trace, so per-stage time lands in
    /// `GET /metrics` and slow requests in `GET /debug/slow`.
    pub fn handle(&self, req: &Request) -> Response {
        self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
        self.stats
            .requests_in_flight
            .fetch_add(1, Ordering::Relaxed);
        let _in_flight = InFlightGuard(&self.stats);
        let id = match req.header(REQUEST_ID_HEADER) {
            Some(id) if !id.is_empty() => id.to_string(),
            _ => self.obs.mint_id(),
        };
        let trace = self.obs.begin(id, &req.path);
        let response = self.dispatch(req);
        let response = response.with_request_id(trace.id());
        trace.finish(response.status);
        response
    }

    fn dispatch(&self, req: &Request) -> Response {
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/narrate") => self.narrate(req),
            ("POST", "/narrate/batch") => self.narrate_batch(req),
            ("POST", "/narrate/diff") if self.diff.is_some() => self.narrate_diff(req),
            ("POST", "/narrate/diff/batch") if self.diff.is_some() => self.narrate_diff_batch(req),
            (_, "/narrate/diff" | "/narrate/diff/batch") if self.diff.is_some() => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/metrics") if self.obs.enabled() => self.metrics(),
            ("GET", "/debug/slow") => self.debug_slow(req),
            (_, "/metrics") if self.obs.enabled() => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            (_, "/debug/slow") => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            ("GET", "/catalog") if self.catalog.is_some() => self.catalog_info(),
            ("POST", "/catalog/apply") if self.catalog.is_some() => self.catalog_apply(req),
            (_, "/catalog" | "/catalog/apply") if self.catalog.is_some() => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            ("POST", "/cache/clear") if self.cache.is_some() => self.cache_clear(),
            (_, "/cache/clear") if self.cache.is_some() => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            (_, "/narrate" | "/narrate/batch" | "/healthz" | "/stats") => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            _ => {
                self.stats.not_found.fetch_add(1, Ordering::Relaxed);
                Response::json(
                    404,
                    error_body_raw("http", &format!("no route for {}", req.path), 404)
                        .to_string_compact(),
                )
            }
        };
        if response.status >= 400 {
            self.stats.error_responses.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Whether `?nocache=1` (any value but `0`) asks this request to
    /// bypass the narration cache.
    fn wants_nocache(req: &Request) -> bool {
        req.query_param("nocache").is_some_and(|v| v != "0")
    }

    /// Per-request style override from `?style=`, if present. A value
    /// outside the known set is the *client's* mistake: `Err` carries a
    /// ready-made 400 response, not a translator error.
    fn style_of(req: &Request) -> Result<Option<RenderStyle>, Response> {
        match req.query_param("style").map(parse_style).transpose() {
            Ok(style) => Ok(style),
            Err(message) => Err(Response::json(
                400,
                error_body_raw("style", &message, 400).to_string_compact(),
            )),
        }
    }

    fn build_request(
        doc: &str,
        style: Option<RenderStyle>,
    ) -> Result<NarrationRequest, LanternError> {
        let mut narration_req = NarrationRequest::auto(doc)?;
        if let Some(style) = style {
            narration_req = narration_req.with_style(style);
        }
        Ok(narration_req)
    }

    /// `POST /narrate` — the body is one raw plan document, vendor
    /// format auto-detected.
    fn narrate(&self, req: &Request) -> Response {
        self.stats.narrate_requests.fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let Some(doc) = req.body_utf8() else {
            return error_response(&LanternError::Parse {
                format: lantern_core::PlanFormat::PgJson,
                message: "request body is not valid UTF-8".into(),
            });
        };
        let parsed = {
            let _parse = span(Stage::Parse);
            Self::build_request(doc, style)
        };
        let narrated = parsed.and_then(|r| {
            let _narrate = span(Stage::Narrate);
            match (&self.cache, Self::wants_nocache(req)) {
                // `?nocache=1` routes around the cache (neither
                // consulted nor filled) when one is configured.
                (Some(cache), true) => cache.narrate_uncached(&r),
                _ => self.translator.narrate(&r),
            }
        });
        match narrated {
            Ok(resp) => {
                self.stats.narrate_ok.fetch_add(1, Ordering::Relaxed);
                let _render = span(Stage::Render);
                Response::json(200, narration_value(&resp).to_string_compact())
            }
            Err(err) => {
                self.stats.narrate_errors.fetch_add(1, Ordering::Relaxed);
                error_response(&err)
            }
        }
    }

    /// `POST /narrate/batch` — the body is a JSON array of plan
    /// document strings. The envelope must parse (else 400); individual
    /// documents fail *per item* so one bad plan doesn't reject the
    /// classmates batched with it.
    fn narrate_batch(&self, req: &Request) -> Response {
        self.stats.batch_requests.fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let Some(body) = req.body_utf8() else {
            return Response::json(
                400,
                error_body_raw("parse", "request body is not valid UTF-8", 400).to_string_compact(),
            );
        };
        let parse_span = span(Stage::Parse);
        let docs = match JsonValue::parse(body) {
            // An empty batch is a client mistake (usually a broken
            // harness): answer a clear 400 instead of an empty 200
            // the caller would silently zip against its inputs.
            Ok(JsonValue::Array(items)) if items.is_empty() => {
                return Response::json(
                    400,
                    error_body_raw(
                        "parse",
                        "batch body must be a non-empty JSON array of plan document strings",
                        400,
                    )
                    .to_string_compact(),
                )
            }
            Ok(JsonValue::Array(items)) => items,
            Ok(_) => {
                return Response::json(
                    400,
                    error_body_raw(
                        "parse",
                        "batch body must be a JSON array of plan document strings",
                        400,
                    )
                    .to_string_compact(),
                )
            }
            Err(e) => {
                return Response::json(
                    400,
                    error_body_raw("parse", &format!("batch body is not JSON: {e}"), 400)
                        .to_string_compact(),
                )
            }
        };
        let mut items: Vec<Result<NarrationRequest, LanternError>> = Vec::with_capacity(docs.len());
        for doc in &docs {
            items.push(match doc.as_str() {
                Some(doc) => Self::build_request(doc, style),
                None => Err(LanternError::Parse {
                    format: lantern_core::PlanFormat::PgJson,
                    message: "batch entries must be plan document strings".into(),
                }),
            });
        }
        drop(parse_span);
        self.stats
            .batch_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);

        // Fan the well-formed requests through `narrate_batch` (one
        // POEM snapshot, threaded fan-out), then stitch per-item
        // detection errors back in at their original positions. The Ok
        // requests are moved out, not cloned — each one owns its raw
        // plan document, up to `max_body_bytes` of it.
        let mut good: Vec<NarrationRequest> = Vec::with_capacity(docs.len());
        let placements: Vec<Result<(), LanternError>> = items
            .into_iter()
            .map(|item| item.map(|req| good.push(req)))
            .collect();
        let narrated = {
            let _narrate = span(Stage::Narrate);
            match (&self.cache, Self::wants_nocache(req)) {
                (Some(cache), true) => cache.narrate_batch_uncached(&good),
                _ => self.translator.narrate_batch(&good),
            }
        };
        let _render = span(Stage::Render);
        let mut narrated = narrated.into_iter();
        let mut out = Vec::with_capacity(placements.len());
        for placement in placements {
            let result = match placement {
                // A conforming backend returns one result per request;
                // treat a short answer as that backend's error rather
                // than panicking the worker.
                Ok(()) => narrated.next().unwrap_or_else(|| {
                    Err(LanternError::Backend {
                        backend: self.translator.backend().to_string(),
                        message: "backend returned fewer batch results than requests".into(),
                    })
                }),
                Err(e) => Err(e),
            };
            out.push(match result {
                Ok(resp) => {
                    self.stats.narrate_ok.fetch_add(1, Ordering::Relaxed);
                    narration_value(&resp)
                }
                Err(err) => {
                    self.stats.narrate_errors.fetch_add(1, Ordering::Relaxed);
                    error_body(&err)
                }
            });
        }
        Response::json(200, JsonValue::Array(out).to_string_compact())
    }

    /// `GET /healthz` — liveness plus which backend is live.
    fn healthz(&self) -> Response {
        let mut obj = BTreeMap::new();
        obj.insert("status".to_string(), JsonValue::String("ok".to_string()));
        obj.insert(
            "backend".to_string(),
            JsonValue::String(self.translator.backend().to_string()),
        );
        obj.insert(
            "uptime_ms".to_string(),
            JsonValue::Number(self.stats.uptime().as_millis() as f64),
        );
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `GET /stats` — the counter snapshot, with the narration cache's
    /// counters merged in under `"cache"` when one is configured.
    fn stats(&self) -> Response {
        let mut body = self.stats.snapshot().to_json_value();
        if let (Some(cache), JsonValue::Object(obj)) = (&self.cache, &mut body) {
            obj.insert("cache".to_string(), cache_stats_value(&cache.cache_stats()));
        }
        Response::json(200, body.to_string_compact())
    }

    /// `POST /narrate/diff` — the body is a JSON object
    /// `{"base": "<plan doc>", "alt": "<plan doc>"}`; each document's
    /// vendor format is auto-detected independently. Only routed when a
    /// diff backend is configured.
    fn narrate_diff(&self, req: &Request) -> Response {
        let diff = self.diff.as_ref().expect("routed only with a diff backend");
        self.stats.diff_requests.fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let parse_span = span(Stage::Parse);
        let (base_doc, alt_value) = match Self::diff_envelope(req, "alt") {
            Ok(docs) => docs,
            Err(response) => return response,
        };
        let Some(alt_doc) = alt_value.as_str() else {
            return Response::json(
                400,
                error_body_raw("parse", "\"alt\" must be a plan document string", 400)
                    .to_string_compact(),
            );
        };
        let request = DiffRequest::auto(&base_doc, alt_doc).map(|r| match style {
            Some(style) => r.with_style(style),
            None => r,
        });
        drop(parse_span);
        let compared = request.and_then(|r| {
            let _diff = span(Stage::Diff);
            diff.narrate_diff(&r)
        });
        match compared {
            Ok(resp) => {
                self.stats.diff_ok.fetch_add(1, Ordering::Relaxed);
                let _render = span(Stage::Render);
                Response::json(200, diff_value(&resp).to_string_compact())
            }
            Err(err) => {
                self.stats.diff_errors.fetch_add(1, Ordering::Relaxed);
                error_response(&err)
            }
        }
    }

    /// Pulls `{"base": ..., "<alt key>": ...}` out of a diff request
    /// body; `Err` is a ready-made 400. The alt value comes back as
    /// parsed JSON — a string for `/narrate/diff`, an array for
    /// `/narrate/diff/batch` — for the caller to validate.
    fn diff_envelope(req: &Request, alt_key: &str) -> Result<(String, JsonValue), Response> {
        let parse_err = |message: &str| {
            Err(Response::json(
                400,
                error_body_raw("parse", message, 400).to_string_compact(),
            ))
        };
        let Some(body) = req.body_utf8() else {
            return parse_err("request body is not valid UTF-8");
        };
        let envelope = match JsonValue::parse(body) {
            Ok(value) => value,
            Err(e) => return parse_err(&format!("diff body is not JSON: {e}")),
        };
        let Some(base) = envelope.get("base").and_then(JsonValue::as_str) else {
            return parse_err(&format!(
                "diff body must be an object with string \"base\" and {alt_key:?} keys"
            ));
        };
        let Some(alt) = envelope.get(alt_key) else {
            return parse_err(&format!(
                "diff body must be an object with string \"base\" and {alt_key:?} keys"
            ));
        };
        Ok((base.to_string(), alt.clone()))
    }

    /// `POST /narrate/diff/batch` — the body is
    /// `{"base": "<doc>", "alts": ["<doc>", ...]}`: one base compared
    /// against every alternative. Successful comparisons come back
    /// ranked by informativeness (highest score first); per-item
    /// failures follow in input order. Every item carries `alt_index`,
    /// its position in the request's `alts` array. A base that fails to
    /// parse rejects the whole request — nothing could be compared.
    fn narrate_diff_batch(&self, req: &Request) -> Response {
        let diff = self.diff.as_ref().expect("routed only with a diff backend");
        self.stats
            .diff_batch_requests
            .fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let parse_span = span(Stage::Parse);
        let (base_doc, alts_value) = match Self::diff_envelope(req, "alts") {
            Ok(docs) => docs,
            Err(response) => return response,
        };
        let alts = match alts_value {
            JsonValue::Array(items) if items.is_empty() => {
                return Response::json(
                    400,
                    error_body_raw(
                        "parse",
                        "\"alts\" must be a non-empty JSON array of plan document strings",
                        400,
                    )
                    .to_string_compact(),
                )
            }
            JsonValue::Array(items) => items,
            _ => {
                return Response::json(
                    400,
                    error_body_raw(
                        "parse",
                        "\"alts\" must be a JSON array of plan document strings",
                        400,
                    )
                    .to_string_compact(),
                )
            }
        };
        // The base failing to detect/parse is a whole-request error:
        // with no base there is nothing to compare any alternative to.
        let base = match PlanSource::auto(&base_doc) {
            Ok(base) => base,
            Err(err) => {
                self.stats.diff_errors.fetch_add(1, Ordering::Relaxed);
                return error_response(&err);
            }
        };
        self.stats
            .diff_batch_items
            .fetch_add(alts.len() as u64, Ordering::Relaxed);
        let mut good: Vec<PlanSource> = Vec::with_capacity(alts.len());
        let placements: Vec<Result<(), LanternError>> = alts
            .iter()
            .map(|item| {
                let doc = item.as_str().ok_or_else(|| LanternError::Parse {
                    format: lantern_core::PlanFormat::PgJson,
                    message: "\"alts\" entries must be plan document strings".into(),
                })?;
                PlanSource::auto(doc).map(|source| good.push(source))
            })
            .collect();
        drop(parse_span);
        let compared = {
            let _diff = span(Stage::Diff);
            diff.narrate_diff_batch(&base, &good, style)
        };
        let _render = span(Stage::Render);
        let mut compared = compared.into_iter();

        // Stitch detection errors back in at their original indices,
        // then rank: successes by score descending (ties keep input
        // order), failures after them in input order.
        let mut oks: Vec<(usize, DiffResponse)> = Vec::with_capacity(placements.len());
        let mut errs: Vec<(usize, LanternError)> = Vec::new();
        for (index, placement) in placements.into_iter().enumerate() {
            let result = match placement {
                Ok(()) => compared.next().unwrap_or_else(|| {
                    Err(LanternError::Backend {
                        backend: diff.diff_backend().to_string(),
                        message: "diff backend returned fewer batch results than requests".into(),
                    })
                }),
                Err(e) => Err(e),
            };
            match result {
                Ok(resp) => {
                    self.stats.diff_ok.fetch_add(1, Ordering::Relaxed);
                    oks.push((index, resp));
                }
                Err(err) => {
                    self.stats.diff_errors.fetch_add(1, Ordering::Relaxed);
                    errs.push((index, err));
                }
            }
        }
        oks.sort_by(|(ai, a), (bi, b)| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ai.cmp(bi))
        });
        let mut out = Vec::with_capacity(oks.len() + errs.len());
        for (index, resp) in &oks {
            let mut value = diff_value(resp);
            if let JsonValue::Object(obj) = &mut value {
                obj.insert("alt_index".to_string(), JsonValue::Number(*index as f64));
            }
            out.push(value);
        }
        for (index, err) in &errs {
            let mut value = error_body(err);
            if let JsonValue::Object(obj) = &mut value {
                obj.insert("alt_index".to_string(), JsonValue::Number(*index as f64));
            }
            out.push(value);
        }
        Response::json(200, JsonValue::Array(out).to_string_compact())
    }

    /// `POST /cache/clear` — drop every cached narration; answers how
    /// many were resident. Only routed when a cache is configured.
    fn cache_clear(&self) -> Response {
        let cache = self.cache.as_ref().expect("routed only with a cache");
        let mut obj = BTreeMap::new();
        obj.insert(
            "cleared".to_string(),
            JsonValue::Number(cache.clear_cache() as f64),
        );
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `GET /catalog` — the node's catalog version and the highest
    /// broadcast sequence number applied. Doubles as the coordinator's
    /// health + lag probe. Only routed with a catalog surface.
    fn catalog_info(&self) -> Response {
        let catalog = self.catalog.as_ref().expect("routed only with a catalog");
        let mut obj = BTreeMap::new();
        obj.insert(
            "version".to_string(),
            JsonValue::Number(catalog.catalog_version() as f64),
        );
        obj.insert(
            "applied_seq".to_string(),
            JsonValue::Number(catalog.catalog_seq() as f64),
        );
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `POST /catalog/apply` — body
    /// `{"from_seq": N, "statements": ["<POOL statement>", ...]}` where
    /// `statements[i]` carries sequence number `N + i`. Already-applied
    /// sequence numbers are skipped (idempotent replay); a batch that
    /// would skip ahead of this node's `applied_seq + 1` is rejected
    /// with `409` so the sender replays the missing prefix first.
    fn catalog_apply(&self, req: &Request) -> Response {
        let catalog = self.catalog.as_ref().expect("routed only with a catalog");
        let parse_err = |message: &str| {
            Response::json(
                400,
                error_body_raw("parse", message, 400).to_string_compact(),
            )
        };
        let Some(body) = req.body_utf8() else {
            return parse_err("request body is not valid UTF-8");
        };
        let envelope = match JsonValue::parse(body) {
            Ok(value) => value,
            Err(e) => return parse_err(&format!("catalog body is not JSON: {e}")),
        };
        let Some(from_seq) = envelope.get("from_seq").and_then(JsonValue::as_f64) else {
            return parse_err("catalog body must carry a numeric \"from_seq\"");
        };
        let statements: Vec<String> = match envelope.get("statements") {
            Some(JsonValue::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(stmt) => out.push(stmt.to_string()),
                        None => {
                            return parse_err(
                                "\"statements\" entries must be POOL statement strings",
                            )
                        }
                    }
                }
                out
            }
            _ => return parse_err("catalog body must carry a \"statements\" array"),
        };
        match catalog.catalog_apply(from_seq as u64, &statements) {
            Ok(applied) => {
                let mut obj = BTreeMap::new();
                obj.insert(
                    "applied".to_string(),
                    JsonValue::Number(applied.applied as f64),
                );
                obj.insert(
                    "skipped".to_string(),
                    JsonValue::Number(applied.skipped as f64),
                );
                obj.insert(
                    "applied_seq".to_string(),
                    JsonValue::Number(applied.applied_seq as f64),
                );
                obj.insert(
                    "version".to_string(),
                    JsonValue::Number(applied.version as f64),
                );
                obj.insert(
                    "errors".to_string(),
                    JsonValue::Array(
                        applied
                            .errors
                            .iter()
                            .map(|e| JsonValue::String(e.clone()))
                            .collect(),
                    ),
                );
                Response::json(200, JsonValue::Object(obj).to_string_compact())
            }
            Err(err @ CatalogApplyError::SequenceGap { .. }) => Response::json(
                409,
                error_body_raw("catalog", &err.to_string(), 409).to_string_compact(),
            ),
        }
    }

    /// `GET /metrics` — Prometheus text exposition: per-stage and
    /// whole-request latency histograms from the recorder, the server
    /// counter set as `lantern_server_*`, and (when a cache is
    /// configured) its counters as `lantern_cache_*`. Not routed while
    /// metrics are disabled, so `--metrics-off` turns this into a 404.
    fn metrics(&self) -> Response {
        let registry = self.obs.registry();
        // Point-in-time readings are gauges; every other snapshot key
        // only ever increments, which makes it a Prometheus counter.
        const SERVER_GAUGES: [&str; 4] = [
            "queue_depth",
            "requests_in_flight",
            "uptime_ms",
            "uptime_seconds",
        ];
        if let JsonValue::Object(obj) = self.stats.snapshot().to_json_value() {
            for (key, value) in &obj {
                let JsonValue::Number(n) = value else {
                    continue;
                };
                let name = format!("lantern_server_{key}");
                if SERVER_GAUGES.contains(&key.as_str()) {
                    registry.set_gauge(&name, &[], *n as u64);
                } else {
                    registry.set_counter(&name, &[], *n as u64);
                }
            }
        }
        const CACHE_GAUGES: [&str; 5] = ["entries", "bytes", "max_entries", "max_bytes", "shards"];
        if let Some(cache) = &self.cache {
            if let JsonValue::Object(obj) = cache_stats_value(&cache.cache_stats()) {
                for (key, value) in &obj {
                    let JsonValue::Number(n) = value else {
                        continue;
                    };
                    let name = format!("lantern_cache_{key}");
                    if CACHE_GAUGES.contains(&key.as_str()) {
                        registry.set_gauge(&name, &[], *n as u64);
                    } else {
                        registry.set_counter(&name, &[], *n as u64);
                    }
                }
            }
        }
        Response::text(200, self.obs.render_prometheus(&[]))
    }

    /// `GET /debug/slow?threshold_ms=N` — the captured slow-request
    /// ring (newest first): request id, path, status, total and
    /// per-stage latency in microseconds, and the plan fingerprint when
    /// the request reached the cache layer. `threshold_ms` filters at
    /// read time; capture is governed by `--slow-log-ms`.
    fn debug_slow(&self, req: &Request) -> Response {
        let threshold_ms = req
            .query_param("threshold_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Response::json(
            200,
            slow_log_value(&self.obs, threshold_ms).to_string_compact(),
        )
    }
}

/// The `GET /debug/slow` response body over `recorder`'s slow-request
/// ring, filtered to requests at least `threshold_ms` long (newest
/// first). Shared with the cluster coordinator, which serves the same
/// endpoint over its own recorder.
pub fn slow_log_value(recorder: &Recorder, threshold_ms: u64) -> JsonValue {
    let entries = recorder
        .slow_entries(threshold_ms.saturating_mul(1_000_000))
        .into_iter()
        .map(|entry| {
            let mut stages = BTreeMap::new();
            for stage in Stage::ALL {
                let ns = entry.stage_ns[stage.index()];
                if ns > 0 {
                    stages.insert(
                        stage.name().to_string(),
                        JsonValue::Number(ns as f64 / 1_000.0),
                    );
                }
            }
            let mut obj = BTreeMap::new();
            obj.insert("id".to_string(), JsonValue::String(entry.id));
            obj.insert("path".to_string(), JsonValue::String(entry.path));
            obj.insert("status".to_string(), JsonValue::Number(entry.status as f64));
            obj.insert(
                "total_us".to_string(),
                JsonValue::Number(entry.total_ns as f64 / 1_000.0),
            );
            obj.insert("stages_us".to_string(), JsonValue::Object(stages));
            if let Some(fp) = entry.fingerprint {
                obj.insert("fingerprint".to_string(), JsonValue::String(fp));
            }
            JsonValue::Object(obj)
        })
        .collect();
    let mut obj = BTreeMap::new();
    obj.insert(
        "threshold_ms".to_string(),
        JsonValue::Number(threshold_ms as f64),
    );
    obj.insert(
        "capture_threshold_ms".to_string(),
        JsonValue::Number(recorder.slow_threshold_ns() as f64 / 1e6),
    );
    obj.insert("entries".to_string(), JsonValue::Array(entries));
    JsonValue::Object(obj)
}

/// The success wire form of a diff comparison: the backend name,
/// informativeness score, an `identical` convenience flag, the
/// rendered text, the structured change list, and the narration in
/// the same stable format `/narrate` uses.
fn diff_value(resp: &DiffResponse) -> JsonValue {
    let changes = resp
        .changes
        .iter()
        .map(|change| {
            let mut obj = BTreeMap::new();
            obj.insert("kind".to_string(), JsonValue::String(change.kind.clone()));
            obj.insert("path".to_string(), JsonValue::String(change.path.clone()));
            obj.insert("op".to_string(), JsonValue::String(change.op.clone()));
            obj.insert(
                "detail".to_string(),
                JsonValue::String(change.detail.clone()),
            );
            obj.insert("weight".to_string(), JsonValue::Number(change.weight));
            JsonValue::Object(obj)
        })
        .collect();
    let mut obj = BTreeMap::new();
    obj.insert(
        "backend".to_string(),
        JsonValue::String(resp.backend.clone()),
    );
    obj.insert("score".to_string(), JsonValue::Number(resp.score));
    obj.insert(
        "identical".to_string(),
        JsonValue::Bool(resp.is_identical()),
    );
    obj.insert("text".to_string(), JsonValue::String(resp.text.clone()));
    obj.insert("changes".to_string(), JsonValue::Array(changes));
    obj.insert("narration".to_string(), resp.narration.to_json_value());
    JsonValue::Object(obj)
}

/// The `"cache"` object of the `GET /stats` body.
fn cache_stats_value(stats: &CacheStatsSnapshot) -> JsonValue {
    let mut obj = BTreeMap::new();
    for (key, value) in [
        ("entries", stats.entries),
        ("bytes", stats.bytes),
        ("max_entries", stats.max_entries),
        ("max_bytes", stats.max_bytes),
        ("shards", stats.shards),
        ("hits", stats.hits),
        ("misses", stats.misses),
        ("insertions", stats.insertions),
        ("evictions", stats.evictions),
        ("doc_hits", stats.doc_hits),
        ("coalesced", stats.coalesced),
        ("batch_dedup_hits", stats.batch_dedup_hits),
        ("uncacheable", stats.uncacheable),
        ("clears", stats.clears),
    ] {
        obj.insert(key.to_string(), JsonValue::Number(value as f64));
    }
    JsonValue::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_core::RuleTranslator;
    use lantern_pool::{default_mssql_store, default_pg_store};
    use std::sync::Arc;

    const PG_DOC: &str = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
    const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
        <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
        </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

    fn router() -> Router<RuleTranslator> {
        Router::new(
            RuleTranslator::new(default_mssql_store()),
            Arc::new(ServeStats::new()),
        )
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()), 1 << 20).unwrap()
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()), 1 << 20).unwrap()
    }

    #[test]
    fn narrate_round_trips_both_vendors() {
        let router = router();
        for (doc, needle) in [
            (PG_DOC, "sequential scan on orders"),
            (XML_DOC, "table scan on photoobj"),
        ] {
            let resp = router.handle(&post("/narrate", doc));
            assert_eq!(resp.status, 200);
            let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let text = value.get("text").and_then(JsonValue::as_str).unwrap();
            assert!(text.contains(needle), "{text}");
            assert_eq!(
                value.get("backend").and_then(JsonValue::as_str),
                Some("rule")
            );
            // The narration field is the stable wire format.
            let narration = lantern_core::Narration::from_json(
                &value.get("narration").unwrap().to_string_compact(),
            )
            .unwrap();
            assert!(!narration.steps().is_empty());
        }
    }

    #[test]
    fn style_query_parameter_applies() {
        let router = router();
        let resp = router.handle(&post("/narrate?style=bulleted", PG_DOC));
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(value
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("- "));
        // Unknown styles are a client error, not a crash.
        let resp = router.handle(&post("/narrate?style=sonnet", PG_DOC));
        assert_eq!(resp.status, 400);
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            value
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("style")
        );
    }

    /// Table-driven: every `LanternError` variant the service can
    /// surface maps to its intended status and `error.kind`.
    #[test]
    fn error_to_http_mapping_table() {
        let router = router();
        let cases: &[(&str, &str, u16, &str)] = &[
            ("/narrate", "", 400, "empty_input"),
            ("/narrate", "EXPLAIN SELECT 1", 400, "unknown_format"),
            ("/narrate", r#"{"Plan": {"Node Type"#, 400, "parse"),
            ("/narrate", "<html><body/></html>", 400, "parse"),
            (
                // A childless Hash clustered under its join is the
                // structurally-invalid-plan case (auxiliary operator
                // with nothing to build from).
                "/narrate",
                r#"{"Plan": {"Node Type": "Hash Join", "Hash Cond": "(a.x = b.y)",
                    "Plans": [{"Node Type": "Seq Scan", "Relation Name": "a"},
                              {"Node Type": "Hash"}]}}"#,
                422,
                "plan",
            ),
        ];
        for (path, body, status, kind) in cases {
            let resp = router.handle(&post(path, body));
            assert_eq!(resp.status, *status, "{body:?}");
            let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let err = value.get("error").expect("error body");
            assert_eq!(err.get("kind").and_then(JsonValue::as_str), Some(*kind));
            assert_eq!(
                err.get("status").and_then(JsonValue::as_f64),
                Some(*status as f64)
            );
            assert!(err.get("message").and_then(JsonValue::as_str).is_some());
        }
    }

    #[test]
    fn unknown_operator_maps_to_422() {
        // A pg-only catalog cannot narrate the mssql plan.
        let router = Router::new(
            RuleTranslator::new(default_pg_store()),
            Arc::new(ServeStats::new()),
        );
        let resp = router.handle(&post("/narrate", XML_DOC));
        assert_eq!(resp.status, 422);
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            value
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_operator")
        );
    }

    #[test]
    fn batch_mixes_successes_and_per_item_errors() {
        let router = router();
        let body = format!(
            "[{}, {}, \"not a plan\"]",
            JsonValue::String(PG_DOC.to_string()).to_string_compact(),
            JsonValue::String(XML_DOC.to_string()).to_string_compact(),
        );
        let resp = router.handle(&post("/narrate/batch", &body));
        assert_eq!(resp.status, 200);
        let JsonValue::Array(items) =
            JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
        else {
            panic!("batch response must be an array");
        };
        assert_eq!(items.len(), 3);
        assert!(items[0].get("text").is_some());
        assert!(items[1].get("text").is_some());
        assert_eq!(
            items[2]
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_format")
        );
    }

    #[test]
    fn batch_envelope_failures_are_400() {
        let router = router();
        for body in [
            "not json",
            r#"{"plans": []}"#,
            "[]",
            "  [ ]  ",
            "\"doc\"",
            "42",
        ] {
            let resp = router.handle(&post("/narrate/batch", body));
            assert_eq!(resp.status, 400, "{body:?}");
            let value = json_body(&resp);
            let err = value.get("error").expect("structured error body");
            assert_eq!(err.get("kind").and_then(JsonValue::as_str), Some("parse"));
            assert!(err.get("message").and_then(JsonValue::as_str).is_some());
        }
        // Non-string entries are per-item errors, not envelope errors.
        let resp = router.handle(&post("/narrate/batch", "[42]"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn encoded_style_values_decode_and_trim() {
        let router = router();
        for path in [
            "/narrate?style=bulleted%20",
            "/narrate?style=bulleted+",
            "/narrate?style=%20bulleted",
        ] {
            let resp = router.handle(&post(path, PG_DOC));
            assert_eq!(resp.status, 200, "{path}");
            let value = json_body(&resp);
            assert!(value
                .get("text")
                .and_then(JsonValue::as_str)
                .unwrap()
                .starts_with("- "));
        }
        // Whitespace alone is still an unknown style.
        assert_eq!(
            router.handle(&post("/narrate?style=%20", PG_DOC)).status,
            400
        );
    }

    fn cached_router() -> Router<Arc<lantern_cache::CachedTranslator<RuleTranslator>>> {
        let cached = Arc::new(lantern_cache::CachedTranslator::new(
            RuleTranslator::new(default_mssql_store()),
            lantern_cache::CacheConfig::default(),
        ));
        Router::with_cache(
            Arc::clone(&cached),
            Arc::new(ServeStats::new()),
            cached as Arc<dyn CacheControl + Send + Sync>,
        )
    }

    #[test]
    fn cache_hits_show_in_stats_and_nocache_bypasses() {
        let router = cached_router();
        assert_eq!(router.handle(&post("/narrate", PG_DOC)).status, 200);
        assert_eq!(router.handle(&post("/narrate", PG_DOC)).status, 200);
        let stats = json_body(&router.handle(&get("/stats")));
        let cache = stats.get("cache").expect("cache object in /stats");
        assert_eq!(cache.get("hits").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(cache.get("entries").and_then(JsonValue::as_f64), Some(1.0));

        // A bypassed request neither hits nor fills the cache...
        let resp = router.handle(&post("/narrate?nocache=1", PG_DOC));
        assert_eq!(resp.status, 200);
        let stats = json_body(&router.handle(&get("/stats")));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(JsonValue::as_f64), Some(1.0));
        // ...and its body is identical to the cached one.
        let cached_body = router.handle(&post("/narrate", PG_DOC));
        assert_eq!(resp.body, cached_body.body);
        // `nocache=0` means "use the cache".
        let _ = router.handle(&post("/narrate?nocache=0", PG_DOC));
        let stats = json_body(&router.handle(&get("/stats")));
        assert_eq!(
            stats
                .get("cache")
                .unwrap()
                .get("hits")
                .and_then(JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn cache_clear_route_drops_entries() {
        let router = cached_router();
        let _ = router.handle(&post("/narrate", PG_DOC));
        let _ = router.handle(&post("/narrate", XML_DOC));
        let resp = router.handle(&post("/cache/clear", ""));
        assert_eq!(resp.status, 200);
        let body = json_body(&resp);
        assert_eq!(body.get("cleared").and_then(JsonValue::as_f64), Some(2.0));
        let stats = json_body(&router.handle(&get("/stats")));
        assert_eq!(
            stats
                .get("cache")
                .unwrap()
                .get("entries")
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );
        // Wrong method on a live cache route is 405, not 404.
        assert_eq!(router.handle(&get("/cache/clear")).status, 405);
    }

    #[test]
    fn cache_routes_absent_without_a_cache() {
        let router = router();
        assert_eq!(router.handle(&post("/cache/clear", "")).status, 404);
        let stats = json_body(&router.handle(&get("/stats")));
        assert!(stats.get("cache").is_none());
    }

    #[test]
    fn in_flight_gauge_counts_self_and_returns_to_zero() {
        let router = router();
        let stats = json_body(&router.handle(&get("/stats")));
        assert_eq!(
            stats.get("requests_in_flight").and_then(JsonValue::as_f64),
            Some(1.0),
            "a /stats response counts at least itself"
        );
        assert!(stats
            .get("uptime_seconds")
            .and_then(JsonValue::as_f64)
            .is_some());
        // After the handler returned, the gauge is back to zero.
        let stats = json_body(&router.handle(&get("/stats")));
        assert_eq!(
            stats.get("requests_in_flight").and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }

    fn json_body(resp: &Response) -> JsonValue {
        JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    const PG_ALT_DOC: &str = r#"{"Plan": {"Node Type": "Index Scan", "Relation Name": "orders", "Index Name": "orders_pkey"}}"#;

    fn diff_router() -> Router<RuleTranslator> {
        Router::with_parts(
            RuleTranslator::new(default_mssql_store()),
            Arc::new(ServeStats::new()),
            None,
            Some(Arc::new(lantern_diff::RuleDiffTranslator::new(
                default_mssql_store(),
            ))),
        )
    }

    fn diff_body(base: &str, alt: &str) -> String {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("base".to_string(), JsonValue::String(base.to_string()));
        obj.insert("alt".to_string(), JsonValue::String(alt.to_string()));
        JsonValue::Object(obj).to_string_compact()
    }

    #[test]
    fn diff_round_trips_and_classifies_the_change() {
        let router = diff_router();
        let resp = router.handle(&post("/narrate/diff", &diff_body(PG_DOC, PG_ALT_DOC)));
        assert_eq!(resp.status, 200);
        let value = json_body(&resp);
        assert_eq!(
            value.get("backend").and_then(JsonValue::as_str),
            Some("rule-diff")
        );
        assert_eq!(value.get("identical"), Some(&JsonValue::Bool(false)));
        let JsonValue::Array(changes) = value.get("changes").unwrap() else {
            panic!("changes must be an array");
        };
        assert!(!changes.is_empty());
        assert_eq!(
            changes[0].get("kind").and_then(JsonValue::as_str),
            Some("operator-substitution")
        );
        assert!(
            changes[0]
                .get("weight")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(value.get("score").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert!(value
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("index scan"));

        // Self-diff is empty and scores zero.
        let resp = router.handle(&post("/narrate/diff", &diff_body(PG_DOC, PG_DOC)));
        let value = json_body(&resp);
        assert_eq!(value.get("identical"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("score").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn diff_detects_each_document_format_independently() {
        let router = diff_router();
        // pg base vs mssql alternative: formats auto-detect per side.
        let resp = router.handle(&post("/narrate/diff", &diff_body(PG_DOC, XML_DOC)));
        assert_eq!(resp.status, 200);
        let value = json_body(&resp);
        assert_eq!(value.get("identical"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn diff_malformed_envelopes_are_structured_400s() {
        let router = diff_router();
        for body in [
            "not json",
            "[]",
            "42",
            r#"{"base": "x"}"#,
            r#"{"alt": "x"}"#,
            r#"{"base": 42, "alt": "x"}"#,
            &format!(
                r#"{{"base": {}, "alt": 42}}"#,
                JsonValue::String(PG_DOC.into()).to_string_compact()
            ),
        ] {
            let resp = router.handle(&post("/narrate/diff", body));
            assert_eq!(resp.status, 400, "{body:?}");
            let value = json_body(&resp);
            let err = value.get("error").expect("structured error body");
            assert_eq!(err.get("kind").and_then(JsonValue::as_str), Some("parse"));
        }
        // Well-formed envelope around an empty document: the
        // translator's empty_input, not a parse error.
        let resp = router.handle(&post("/narrate/diff", &diff_body("", PG_DOC)));
        assert_eq!(resp.status, 400);
        assert_eq!(
            json_body(&resp)
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("empty_input")
        );
    }

    #[test]
    fn diff_batch_ranks_by_informativeness_with_alt_index() {
        let router = diff_router();
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("base".to_string(), JsonValue::String(PG_DOC.to_string()));
        obj.insert(
            "alts".to_string(),
            JsonValue::Array(vec![
                JsonValue::String(PG_DOC.to_string()),     // identical: score 0
                JsonValue::String("nonsense".to_string()), // per-item error
                JsonValue::String(PG_ALT_DOC.to_string()), // real change
            ]),
        );
        let resp = router.handle(&post(
            "/narrate/diff/batch",
            &JsonValue::Object(obj).to_string_compact(),
        ));
        assert_eq!(resp.status, 200);
        let JsonValue::Array(items) = json_body(&resp) else {
            panic!("batch response must be an array");
        };
        assert_eq!(items.len(), 3);
        // Ranked: the informative alternative first, the identical one
        // second, the per-item failure trailing.
        assert_eq!(
            items[0].get("alt_index").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert!(items[0].get("score").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert_eq!(
            items[1].get("alt_index").and_then(JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(items[1].get("identical"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            items[2].get("alt_index").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            items[2]
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_format")
        );
    }

    #[test]
    fn diff_batch_envelope_and_base_failures_reject_the_request() {
        let router = diff_router();
        for body in [
            r#"{"base": "x", "alts": []}"#,
            r#"{"base": "x", "alts": "not an array"}"#,
            r#"{"alts": ["x"]}"#,
        ] {
            let resp = router.handle(&post("/narrate/diff/batch", body));
            assert_eq!(resp.status, 400, "{body:?}");
            assert_eq!(
                json_body(&resp)
                    .get("error")
                    .unwrap()
                    .get("kind")
                    .and_then(JsonValue::as_str),
                Some("parse")
            );
        }
        // A base that parses as no known format fails the whole
        // request: there is nothing to compare against.
        let body = format!(
            r#"{{"base": "EXPLAIN SELECT 1", "alts": [{}]}}"#,
            JsonValue::String(PG_DOC.into()).to_string_compact()
        );
        let resp = router.handle(&post("/narrate/diff/batch", &body));
        assert_eq!(resp.status, 400);
        assert_eq!(
            json_body(&resp)
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_format")
        );
    }

    #[test]
    fn diff_style_override_applies_to_rendered_text() {
        let router = diff_router();
        let resp = router.handle(&post(
            "/narrate/diff?style=bulleted",
            &diff_body(PG_DOC, PG_ALT_DOC),
        ));
        assert_eq!(resp.status, 200);
        assert!(json_body(&resp)
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("- "));
    }

    #[test]
    fn diff_routes_absent_without_a_diff_backend_405_with_one() {
        // No diff backend configured: the paths don't exist.
        let router = router();
        assert_eq!(
            router
                .handle(&post("/narrate/diff", &diff_body(PG_DOC, PG_ALT_DOC)))
                .status,
            404
        );
        assert_eq!(
            router.handle(&post("/narrate/diff/batch", "{}")).status,
            404
        );
        // Configured: wrong method is 405, not 404.
        let router = diff_router();
        assert_eq!(router.handle(&get("/narrate/diff")).status, 405);
        assert_eq!(router.handle(&get("/narrate/diff/batch")).status, 405);
    }

    #[test]
    fn diff_counters_show_in_stats() {
        let router = diff_router();
        let _ = router.handle(&post("/narrate/diff", &diff_body(PG_DOC, PG_ALT_DOC)));
        let _ = router.handle(&post("/narrate/diff", "not json"));
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("base".to_string(), JsonValue::String(PG_DOC.to_string()));
        obj.insert(
            "alts".to_string(),
            JsonValue::Array(vec![
                JsonValue::String(PG_ALT_DOC.to_string()),
                JsonValue::String("junk".to_string()),
            ]),
        );
        let _ = router.handle(&post(
            "/narrate/diff/batch",
            &JsonValue::Object(obj).to_string_compact(),
        ));
        let stats = json_body(&router.handle(&get("/stats")));
        assert_eq!(
            stats.get("diff_requests").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(
            stats.get("diff_batch_requests").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            stats.get("diff_batch_items").and_then(JsonValue::as_f64),
            Some(2.0)
        );
        assert_eq!(stats.get("diff_ok").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(
            stats.get("diff_errors").and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn healthz_and_stats_and_routing_misses() {
        let router = router();
        let health = router.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let value = JsonValue::parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
        assert_eq!(value.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(
            value.get("backend").and_then(JsonValue::as_str),
            Some("rule")
        );

        assert_eq!(router.handle(&get("/nope")).status, 404);
        assert_eq!(router.handle(&get("/narrate")).status, 405);

        let _ = router.handle(&post("/narrate", PG_DOC));
        let stats = router.handle(&get("/stats"));
        let value = JsonValue::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(
            value.get("narrate_ok").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            value.get("not_found").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        // requests_total counts narrate + healthz + 404 + 405 + stats.
        assert_eq!(
            value.get("requests_total").and_then(JsonValue::as_f64),
            Some(5.0)
        );
    }

    fn post_with(path: &str, body: &str, headers: &[(&str, &str)]) -> Request {
        let mut raw = format!("POST {path} HTTP/1.1\r\nContent-Length: {}\r\n", body.len());
        for (name, value) in headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()), 1 << 20).unwrap()
    }

    #[test]
    fn metrics_exposition_covers_stages_requests_and_server_counters() {
        use lantern_obs::{
            parse_exposition, snapshot_from_samples, METRIC_REQUEST_SECONDS, METRIC_STAGE_SECONDS,
        };
        let router = router();
        for _ in 0..3 {
            assert_eq!(router.handle(&post("/narrate", XML_DOC)).status, 200);
        }
        let resp = router.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert!(body.contains("# TYPE lantern_stage_duration_seconds histogram"));
        assert!(body.contains("# TYPE lantern_request_duration_seconds histogram"));
        assert!(body.contains("lantern_server_requests_total"));

        let parsed = parse_exposition(body);
        // The /metrics request itself is still in flight at render
        // time, so exactly the three narrations are recorded.
        let requests = snapshot_from_samples(&parsed.samples, METRIC_REQUEST_SECONDS, &[])
            .expect("request histogram");
        assert_eq!(requests.count, 3);
        for stage in ["parse", "narrate", "render"] {
            let snap =
                snapshot_from_samples(&parsed.samples, METRIC_STAGE_SECONDS, &[("stage", stage)])
                    .unwrap_or_else(|| panic!("stage {stage} series"));
            assert_eq!(snap.count, 3, "stage {stage}");
        }

        // Write endpoints reject non-GET without losing the route.
        assert_eq!(router.handle(&post("/metrics", "")).status, 405);
        assert_eq!(router.handle(&post("/debug/slow", "")).status, 405);
    }

    #[test]
    fn metrics_disabled_router_hides_the_endpoint_but_keeps_ids() {
        let router = router().with_obs(Arc::new(lantern_obs::Recorder::new(
            lantern_obs::RecorderConfig {
                enabled: false,
                ..Default::default()
            },
        )));
        assert_eq!(router.handle(&get("/metrics")).status, 404);
        // Request IDs are part of the wire contract, not the metrics
        // surface: still echoed with tracing off.
        let resp = router.handle(&post_with(
            "/narrate",
            PG_DOC,
            &[(REQUEST_ID_HEADER, "dark-1")],
        ));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header(REQUEST_ID_HEADER), Some("dark-1"));
    }

    #[test]
    fn request_ids_echo_when_supplied_and_mint_when_absent() {
        let router = router();
        let resp = router.handle(&post_with(
            "/narrate",
            PG_DOC,
            &[(REQUEST_ID_HEADER, "caller-7")],
        ));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header(REQUEST_ID_HEADER), Some("caller-7"));

        let first = router.handle(&post("/narrate", PG_DOC));
        let second = router.handle(&post("/narrate", PG_DOC));
        let first_id = first.header(REQUEST_ID_HEADER).expect("minted id");
        let second_id = second.header(REQUEST_ID_HEADER).expect("minted id");
        assert!(!first_id.is_empty());
        assert_ne!(first_id, second_id, "minted ids are distinct");

        // An empty header value counts as absent: mint, don't echo.
        let resp = router.handle(&post_with("/narrate", PG_DOC, &[(REQUEST_ID_HEADER, "")]));
        assert!(!resp.header(REQUEST_ID_HEADER).unwrap().is_empty());
    }

    #[test]
    fn debug_slow_captures_ids_stages_and_fingerprints() {
        use lantern_cache::{CacheConfig, CachedTranslator};
        let cached = Arc::new(CachedTranslator::new(
            RuleTranslator::new(default_pg_store()),
            CacheConfig::default(),
        ));
        let router = Router::with_cache(Arc::clone(&cached), Arc::new(ServeStats::new()), cached);
        let resp = router.handle(&post_with(
            "/narrate",
            PG_DOC,
            &[(REQUEST_ID_HEADER, "slow-able")],
        ));
        assert_eq!(resp.status, 200);

        let resp = router.handle(&get("/debug/slow?threshold_ms=0"));
        assert_eq!(resp.status, 200);
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let entries = value.get("entries").and_then(|e| e.as_array()).unwrap();
        let entry = entries
            .iter()
            .find(|e| e.get("id").and_then(JsonValue::as_str) == Some("slow-able"))
            .expect("traced entry in the slow log");
        assert_eq!(
            entry.get("path").and_then(JsonValue::as_str),
            Some("/narrate")
        );
        assert_eq!(entry.get("status").and_then(JsonValue::as_f64), Some(200.0));
        let stages = entry.get("stages_us").expect("per-stage breakdown");
        assert!(stages.get("fingerprint").is_some(), "{stages:?}");
        // The cache layer noted the plan fingerprint for correlation
        // with cache keys.
        let fingerprint = entry
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .expect("fingerprint recorded");
        assert_eq!(fingerprint.len(), 32);
        assert!(fingerprint.chars().all(|c| c.is_ascii_hexdigit()));

        // A threshold far above the observed latency filters it out.
        let resp = router.handle(&get("/debug/slow?threshold_ms=60000"));
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let entries = value.get("entries").and_then(|e| e.as_array()).unwrap();
        assert!(entries.is_empty(), "{entries:?}");
    }
}
