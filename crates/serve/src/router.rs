//! Request routing: maps parsed HTTP requests onto the
//! [`Translator`] API and renders responses in the service wire
//! format.
//!
//! The wire format (see `docs/SERVING.md`):
//!
//! * success — `{"backend": "...", "text": "...", "narration":
//!   {"steps": [...]}}` where `narration` is exactly
//!   [`Narration::to_json`](lantern_core::Narration::to_json);
//! * failure — `{"error": {"kind": "...", "message": "...",
//!   "status": N}}` with the status code duplicated in the HTTP
//!   status line, mapped through [`LanternError::http_status`].

use crate::http::{Request, Response};
use crate::server::ServeStats;
use lantern_core::{LanternError, NarrationRequest, NarrationResponse, RenderStyle, Translator};
use lantern_text::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// The `{"error": {...}}` JSON body for a narration failure.
pub fn error_body(err: &LanternError) -> JsonValue {
    error_body_raw(err.kind(), &err.to_string(), err.http_status())
}

/// An error body for failures that never reached the translator
/// (routing and HTTP protocol errors).
pub fn error_body_raw(kind: &str, message: &str, status: u16) -> JsonValue {
    let mut inner = BTreeMap::new();
    inner.insert("kind".to_string(), JsonValue::String(kind.to_string()));
    inner.insert(
        "message".to_string(),
        JsonValue::String(message.to_string()),
    );
    inner.insert("status".to_string(), JsonValue::Number(status as f64));
    let mut obj = BTreeMap::new();
    obj.insert("error".to_string(), JsonValue::Object(inner));
    JsonValue::Object(obj)
}

/// A complete HTTP error response (body + status) for a narration
/// failure.
pub fn error_response(err: &LanternError) -> Response {
    Response::json(err.http_status(), error_body(err).to_string_compact())
}

fn narration_value(resp: &NarrationResponse) -> JsonValue {
    let mut obj = BTreeMap::new();
    obj.insert(
        "backend".to_string(),
        JsonValue::String(resp.backend.clone()),
    );
    obj.insert("text".to_string(), JsonValue::String(resp.text.clone()));
    obj.insert("narration".to_string(), resp.narration.to_json_value());
    JsonValue::Object(obj)
}

fn parse_style(raw: &str) -> Result<RenderStyle, String> {
    match raw {
        "numbered" => Ok(RenderStyle::Numbered),
        "bulleted" => Ok(RenderStyle::Bulleted),
        "paragraph" => Ok(RenderStyle::Paragraph),
        other => Err(format!(
            "unknown style {other:?} (expected numbered, bulleted, or paragraph)"
        )),
    }
}

/// Routes requests for one service instance: holds the translator, the
/// shared counters, and the derived backend name.
pub struct Router<T> {
    translator: T,
    stats: std::sync::Arc<ServeStats>,
}

impl<T: Translator> Router<T> {
    /// A router over `translator`, recording into `stats`.
    pub fn new(translator: T, stats: std::sync::Arc<ServeStats>) -> Self {
        Router { translator, stats }
    }

    /// Dispatch one parsed request to its handler.
    pub fn handle(&self, req: &Request) -> Response {
        self.stats.requests_total.fetch_add(1, Ordering::Relaxed);
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/narrate") => self.narrate(req),
            ("POST", "/narrate/batch") => self.narrate_batch(req),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/stats") => self.stats(),
            (_, "/narrate" | "/narrate/batch" | "/healthz" | "/stats") => Response::json(
                405,
                error_body_raw(
                    "http",
                    &format!("method {} not allowed on {}", req.method, req.path),
                    405,
                )
                .to_string_compact(),
            ),
            _ => {
                self.stats.not_found.fetch_add(1, Ordering::Relaxed);
                Response::json(
                    404,
                    error_body_raw("http", &format!("no route for {}", req.path), 404)
                        .to_string_compact(),
                )
            }
        };
        if response.status >= 400 {
            self.stats.error_responses.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// Per-request style override from `?style=`, if present. A value
    /// outside the known set is the *client's* mistake: `Err` carries a
    /// ready-made 400 response, not a translator error.
    fn style_of(req: &Request) -> Result<Option<RenderStyle>, Response> {
        match req.query_param("style").map(parse_style).transpose() {
            Ok(style) => Ok(style),
            Err(message) => Err(Response::json(
                400,
                error_body_raw("style", &message, 400).to_string_compact(),
            )),
        }
    }

    fn build_request(
        doc: &str,
        style: Option<RenderStyle>,
    ) -> Result<NarrationRequest, LanternError> {
        let mut narration_req = NarrationRequest::auto(doc)?;
        if let Some(style) = style {
            narration_req = narration_req.with_style(style);
        }
        Ok(narration_req)
    }

    /// `POST /narrate` — the body is one raw plan document, vendor
    /// format auto-detected.
    fn narrate(&self, req: &Request) -> Response {
        self.stats.narrate_requests.fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let Some(doc) = req.body_utf8() else {
            return error_response(&LanternError::Parse {
                format: lantern_core::PlanFormat::PgJson,
                message: "request body is not valid UTF-8".into(),
            });
        };
        match Self::build_request(doc, style).and_then(|r| self.translator.narrate(&r)) {
            Ok(resp) => {
                self.stats.narrate_ok.fetch_add(1, Ordering::Relaxed);
                Response::json(200, narration_value(&resp).to_string_compact())
            }
            Err(err) => {
                self.stats.narrate_errors.fetch_add(1, Ordering::Relaxed);
                error_response(&err)
            }
        }
    }

    /// `POST /narrate/batch` — the body is a JSON array of plan
    /// document strings. The envelope must parse (else 400); individual
    /// documents fail *per item* so one bad plan doesn't reject the
    /// classmates batched with it.
    fn narrate_batch(&self, req: &Request) -> Response {
        self.stats.batch_requests.fetch_add(1, Ordering::Relaxed);
        let style = match Self::style_of(req) {
            Ok(style) => style,
            Err(response) => return response,
        };
        let Some(body) = req.body_utf8() else {
            return Response::json(
                400,
                error_body_raw("parse", "request body is not valid UTF-8", 400).to_string_compact(),
            );
        };
        let docs = match JsonValue::parse(body) {
            Ok(JsonValue::Array(items)) => items,
            Ok(_) => {
                return Response::json(
                    400,
                    error_body_raw(
                        "parse",
                        "batch body must be a JSON array of plan document strings",
                        400,
                    )
                    .to_string_compact(),
                )
            }
            Err(e) => {
                return Response::json(
                    400,
                    error_body_raw("parse", &format!("batch body is not JSON: {e}"), 400)
                        .to_string_compact(),
                )
            }
        };
        let mut items: Vec<Result<NarrationRequest, LanternError>> = Vec::with_capacity(docs.len());
        for doc in &docs {
            items.push(match doc.as_str() {
                Some(doc) => Self::build_request(doc, style),
                None => Err(LanternError::Parse {
                    format: lantern_core::PlanFormat::PgJson,
                    message: "batch entries must be plan document strings".into(),
                }),
            });
        }
        self.stats
            .batch_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);

        // Fan the well-formed requests through `narrate_batch` (one
        // POEM snapshot, threaded fan-out), then stitch per-item
        // detection errors back in at their original positions. The Ok
        // requests are moved out, not cloned — each one owns its raw
        // plan document, up to `max_body_bytes` of it.
        let mut good: Vec<NarrationRequest> = Vec::with_capacity(docs.len());
        let placements: Vec<Result<(), LanternError>> = items
            .into_iter()
            .map(|item| item.map(|req| good.push(req)))
            .collect();
        let mut narrated = self.translator.narrate_batch(&good).into_iter();
        let mut out = Vec::with_capacity(placements.len());
        for placement in placements {
            let result = match placement {
                // A conforming backend returns one result per request;
                // treat a short answer as that backend's error rather
                // than panicking the worker.
                Ok(()) => narrated.next().unwrap_or_else(|| {
                    Err(LanternError::Backend {
                        backend: self.translator.backend().to_string(),
                        message: "backend returned fewer batch results than requests".into(),
                    })
                }),
                Err(e) => Err(e),
            };
            out.push(match result {
                Ok(resp) => {
                    self.stats.narrate_ok.fetch_add(1, Ordering::Relaxed);
                    narration_value(&resp)
                }
                Err(err) => {
                    self.stats.narrate_errors.fetch_add(1, Ordering::Relaxed);
                    error_body(&err)
                }
            });
        }
        Response::json(200, JsonValue::Array(out).to_string_compact())
    }

    /// `GET /healthz` — liveness plus which backend is live.
    fn healthz(&self) -> Response {
        let mut obj = BTreeMap::new();
        obj.insert("status".to_string(), JsonValue::String("ok".to_string()));
        obj.insert(
            "backend".to_string(),
            JsonValue::String(self.translator.backend().to_string()),
        );
        obj.insert(
            "uptime_ms".to_string(),
            JsonValue::Number(self.stats.uptime().as_millis() as f64),
        );
        Response::json(200, JsonValue::Object(obj).to_string_compact())
    }

    /// `GET /stats` — the counter snapshot.
    fn stats(&self) -> Response {
        Response::json(
            200,
            self.stats.snapshot().to_json_value().to_string_compact(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_core::RuleTranslator;
    use lantern_pool::{default_mssql_store, default_pg_store};
    use std::sync::Arc;

    const PG_DOC: &str = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
    const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
        <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
        </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

    fn router() -> Router<RuleTranslator> {
        Router::new(
            RuleTranslator::new(default_mssql_store()),
            Arc::new(ServeStats::new()),
        )
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()), 1 << 20).unwrap()
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::read_request(&mut std::io::BufReader::new(raw.as_bytes()), 1 << 20).unwrap()
    }

    #[test]
    fn narrate_round_trips_both_vendors() {
        let router = router();
        for (doc, needle) in [
            (PG_DOC, "sequential scan on orders"),
            (XML_DOC, "table scan on photoobj"),
        ] {
            let resp = router.handle(&post("/narrate", doc));
            assert_eq!(resp.status, 200);
            let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let text = value.get("text").and_then(JsonValue::as_str).unwrap();
            assert!(text.contains(needle), "{text}");
            assert_eq!(
                value.get("backend").and_then(JsonValue::as_str),
                Some("rule")
            );
            // The narration field is the stable wire format.
            let narration = lantern_core::Narration::from_json(
                &value.get("narration").unwrap().to_string_compact(),
            )
            .unwrap();
            assert!(!narration.steps().is_empty());
        }
    }

    #[test]
    fn style_query_parameter_applies() {
        let router = router();
        let resp = router.handle(&post("/narrate?style=bulleted", PG_DOC));
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(value
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("- "));
        // Unknown styles are a client error, not a crash.
        let resp = router.handle(&post("/narrate?style=sonnet", PG_DOC));
        assert_eq!(resp.status, 400);
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            value
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("style")
        );
    }

    /// Table-driven: every `LanternError` variant the service can
    /// surface maps to its intended status and `error.kind`.
    #[test]
    fn error_to_http_mapping_table() {
        let router = router();
        let cases: &[(&str, &str, u16, &str)] = &[
            ("/narrate", "", 400, "empty_input"),
            ("/narrate", "EXPLAIN SELECT 1", 400, "unknown_format"),
            ("/narrate", r#"{"Plan": {"Node Type"#, 400, "parse"),
            ("/narrate", "<html><body/></html>", 400, "parse"),
            (
                // A childless Hash clustered under its join is the
                // structurally-invalid-plan case (auxiliary operator
                // with nothing to build from).
                "/narrate",
                r#"{"Plan": {"Node Type": "Hash Join", "Hash Cond": "(a.x = b.y)",
                    "Plans": [{"Node Type": "Seq Scan", "Relation Name": "a"},
                              {"Node Type": "Hash"}]}}"#,
                422,
                "plan",
            ),
        ];
        for (path, body, status, kind) in cases {
            let resp = router.handle(&post(path, body));
            assert_eq!(resp.status, *status, "{body:?}");
            let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let err = value.get("error").expect("error body");
            assert_eq!(err.get("kind").and_then(JsonValue::as_str), Some(*kind));
            assert_eq!(
                err.get("status").and_then(JsonValue::as_f64),
                Some(*status as f64)
            );
            assert!(err.get("message").and_then(JsonValue::as_str).is_some());
        }
    }

    #[test]
    fn unknown_operator_maps_to_422() {
        // A pg-only catalog cannot narrate the mssql plan.
        let router = Router::new(
            RuleTranslator::new(default_pg_store()),
            Arc::new(ServeStats::new()),
        );
        let resp = router.handle(&post("/narrate", XML_DOC));
        assert_eq!(resp.status, 422);
        let value = JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            value
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_operator")
        );
    }

    #[test]
    fn batch_mixes_successes_and_per_item_errors() {
        let router = router();
        let body = format!(
            "[{}, {}, \"not a plan\"]",
            JsonValue::String(PG_DOC.to_string()).to_string_compact(),
            JsonValue::String(XML_DOC.to_string()).to_string_compact(),
        );
        let resp = router.handle(&post("/narrate/batch", &body));
        assert_eq!(resp.status, 200);
        let JsonValue::Array(items) =
            JsonValue::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
        else {
            panic!("batch response must be an array");
        };
        assert_eq!(items.len(), 3);
        assert!(items[0].get("text").is_some());
        assert!(items[1].get("text").is_some());
        assert_eq!(
            items[2]
                .get("error")
                .unwrap()
                .get("kind")
                .and_then(JsonValue::as_str),
            Some("unknown_format")
        );
    }

    #[test]
    fn batch_envelope_failures_are_400() {
        let router = router();
        for body in ["not json", r#"{"plans": []}"#] {
            let resp = router.handle(&post("/narrate/batch", body));
            assert_eq!(resp.status, 400, "{body:?}");
        }
        // Non-string entries are per-item errors, not envelope errors.
        let resp = router.handle(&post("/narrate/batch", "[42]"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn healthz_and_stats_and_routing_misses() {
        let router = router();
        let health = router.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let value = JsonValue::parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
        assert_eq!(value.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(
            value.get("backend").and_then(JsonValue::as_str),
            Some("rule")
        );

        assert_eq!(router.handle(&get("/nope")).status, 404);
        assert_eq!(router.handle(&get("/narrate")).status, 405);

        let _ = router.handle(&post("/narrate", PG_DOC));
        let stats = router.handle(&get("/stats"));
        let value = JsonValue::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        assert_eq!(
            value.get("narrate_ok").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            value.get("not_found").and_then(JsonValue::as_f64),
            Some(1.0)
        );
        // requests_total counts narrate + healthz + 404 + 405 + stats.
        assert_eq!(
            value.get("requests_total").and_then(JsonValue::as_f64),
            Some(5.0)
        );
    }
}
