//! # lantern-serve
//!
//! A long-lived narration service over the unified
//! [`Translator`](lantern_core::Translator) API: the layer that turns
//! the reproduction from a library into the interactive system the
//! paper describes — students paste an `EXPLAIN` artifact at one end
//! and read prose back at the other.
//!
//! The server is **std-only**, consistent with the workspace's
//! offline-shim constraint: no async runtime, no HTTP crate, no serde.
//! On Unix the default serving core is an event-driven readiness loop
//! (raw `epoll` on Linux, `poll` elsewhere) with HTTP/1.1
//! pipelining and load-shedding; `ServeConfig::legacy_blocking`
//! selects the original thread-per-connection loop. Request and
//! response bodies use the in-tree JSON value model
//! (`lantern_text::json`) and the stable `Narration::to_json` wire
//! format.
//!
//! ## Endpoints
//!
//! | Method | Path | Body | Response |
//! |---|---|---|---|
//! | `POST` | `/narrate` | one raw plan document (PG JSON or SQL Server XML, auto-detected) | narration object |
//! | `POST` | `/narrate/batch` | JSON array of plan-document strings | array of per-item narration objects / error objects |
//! | `POST` | `/narrate/diff` | `{"base": doc, "alt": doc}` (formats auto-detected per side) | diff object: change list, score, narration |
//! | `POST` | `/narrate/diff/batch` | `{"base": doc, "alts": [doc, ...]}` | array ranked by informativeness, each with `alt_index` |
//! | `GET` | `/healthz` | — | liveness + backend name |
//! | `GET` | `/stats` | — | request counters (cache counters under `"cache"` when caching is on) |
//! | `GET` | `/metrics` | — | Prometheus text exposition: per-stage + request latency histograms, server/cache counters |
//! | `GET` | `/debug/slow` | — | recent requests (`?threshold_ms=N` filter): IDs, statuses, per-stage timings |
//! | `POST` | `/cache/clear` | — | drop all cached narrations (only routed when caching is on) |
//!
//! The diff endpoints are routed only when the server was started with
//! a diff backend ([`serve_with_parts`]); without one they 404 like any
//! unknown path. All narrate endpoints accept a
//! `?style=numbered|bulleted|paragraph`
//! query parameter, plus `?nocache=1` to bypass the narration cache for
//! one request. Failures map to HTTP statuses through
//! [`LanternError::http_status`](lantern_core::LanternError::http_status)
//! and carry a structured `{"error": {...}}` body. Every response
//! carries an `x-lantern-request-id` header — echoed if the caller
//! supplied one, minted otherwise (`docs/OBSERVABILITY.md` covers the
//! tracing surface; `--metrics-off` removes it). `docs/SERVING.md` in
//! the repository root is the full endpoint reference.
//!
//! ## Quick start
//!
//! ```
//! use lantern_core::RuleTranslator;
//! use lantern_pool::default_pg_store;
//! use lantern_serve::{serve, HttpClient, ServeConfig};
//!
//! // Bind an ephemeral port; `serve` returns once the listener is live.
//! let translator = RuleTranslator::new(default_pg_store());
//! let handle = serve(translator, "127.0.0.1:0", ServeConfig::default()).unwrap();
//!
//! let mut client = HttpClient::connect(handle.addr()).unwrap();
//! let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
//! let resp = client.post("/narrate", doc).unwrap();
//! assert_eq!(resp.status, 200);
//! assert!(resp.body.contains("sequential scan on orders"));
//!
//! drop(client);
//! handle.shutdown().unwrap();
//! ```
//!
//! The root crate wires this into the builder
//! (`LanternBuilder::serve(addr)`) and ships a `lantern-serve` binary;
//! `cargo run --example serve_demo` is a scripted end-to-end tour.

pub mod catalog;
pub mod client;
#[cfg(unix)]
pub(crate) mod event;
pub mod http;
pub mod router;
pub mod server;
pub mod soak;

pub use catalog::{CatalogApplied, CatalogApplyError, CatalogControl};
pub use client::{ClientConfig, ClientError, ClientErrorKind, ClientResponse, HttpClient};
pub use http::{Request, Response};
pub use lantern_cache::{CacheControl, CacheStatsSnapshot};
pub use router::{error_body, Router};
pub use server::{
    reusable_listener, serve, serve_node, serve_on_listener, serve_with_cache, serve_with_parts,
    ServeConfig, ServeStats, ServerHandle, StatsSnapshot,
};
pub use soak::{
    run_soak, run_soak_multi, CacheDelta, LatencySummary, ServerDelta, SoakConfig, SoakReport,
};
