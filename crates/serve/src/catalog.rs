//! The replica-side catalog surface: how a serving node receives POEM
//! catalog mutations from a cluster coordinator.
//!
//! A coordinator keeps an ordered log of POOL statements (seq `1..=N`)
//! and pushes suffixes of it to every replica; each replica tracks the
//! highest sequence number it has applied and ignores replayed
//! prefixes, so broadcast + reconnect-replay is idempotent and every
//! replica executes the same statements in the same order. Statement
//! execution is deterministic, which is what makes "same base store +
//! same statement order" converge to the same `PoemStore::version()`
//! on every node — the convergence check clusters assert after a
//! partition heals.
//!
//! The server routes `GET /catalog` and `POST /catalog/apply` only when
//! booted with an implementation of [`CatalogControl`] (the root
//! crate's `LanternService` provides one over its `PoemStore`); without
//! one the paths stay 404, like `/cache/clear` without a cache.

/// Outcome of applying a batch of catalog statements on a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogApplied {
    /// Statements newly executed by this call (a statement that parses
    /// but fails at execution still counts: execution is deterministic,
    /// so every replica consumes it identically and stays in step).
    pub applied: u64,
    /// Statements skipped because their sequence number was already
    /// applied (replay of an old suffix).
    pub skipped: u64,
    /// Highest statement sequence number applied so far.
    pub applied_seq: u64,
    /// The store's catalog version after the call.
    pub version: u64,
    /// Execution errors hit while applying, in statement order. The
    /// statements still advanced `applied_seq` (see `applied`).
    pub errors: Vec<String>,
}

/// Errors that reject an apply call outright (nothing consumed beyond
/// `applied_seq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogApplyError {
    /// The batch starts past the replica's `applied_seq + 1`: applying
    /// it would skip statements and silently fork the catalog. The
    /// caller should re-send from `expected`.
    SequenceGap {
        /// The next sequence number this replica can accept.
        expected: u64,
        /// The first sequence number the rejected batch carried.
        got: u64,
    },
}

impl std::fmt::Display for CatalogApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogApplyError::SequenceGap { expected, got } => write!(
                f,
                "catalog sequence gap: next acceptable statement is seq {expected}, batch starts at {got}"
            ),
        }
    }
}

impl std::error::Error for CatalogApplyError {}

/// The catalog admin surface a serving node exposes to a coordinator:
/// version/sequence introspection plus ordered, idempotent statement
/// application.
pub trait CatalogControl {
    /// The store's current catalog version (bumped by every mutation).
    fn catalog_version(&self) -> u64;

    /// Highest broadcast sequence number applied so far (`0` on a
    /// fresh replica).
    fn catalog_seq(&self) -> u64;

    /// Apply `statements`, where `statements[i]` carries sequence
    /// number `from_seq + i`. Statements at or below the current
    /// [`catalog_seq`](CatalogControl::catalog_seq) are skipped;
    /// a batch starting past `catalog_seq + 1` is rejected with
    /// [`CatalogApplyError::SequenceGap`].
    fn catalog_apply(
        &self,
        from_seq: u64,
        statements: &[String],
    ) -> Result<CatalogApplied, CatalogApplyError>;
}
