//! A minimal blocking HTTP/1.1 client, just big enough to exercise the
//! server from tests, examples, and benches without `curl` — one
//! keep-alive connection, `Content-Length` bodies only.
//!
//! The client doubles as the cluster coordinator's forwarding leg, so
//! failures are classified ([`ClientError`]): a connect that never
//! completes, a replica that accepts but never answers, a connection
//! that dies mid-exchange, and a malformed response are different
//! decisions for a failover policy (retry the ring successor vs give
//! up), where a bare `io::Error` would flatten them all into "broken".

use lantern_text::json::{JsonError, JsonValue};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Parse the body as JSON.
    pub fn json(&self) -> Result<JsonValue, JsonError> {
        JsonValue::parse(&self.body)
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What went wrong with a client exchange, coarse enough to drive a
/// retry/failover decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientErrorKind {
    /// The TCP connect failed or timed out — nothing is listening (or
    /// reachable) at the address.
    Connect,
    /// A read or write ran into the configured timeout: the peer
    /// accepted the connection (or the request) but stopped making
    /// progress. The request may or may not have been processed.
    Timeout,
    /// The connection closed before a complete response arrived (clean
    /// EOF or reset). Typical of a server killed mid-exchange, or a
    /// stale pooled keep-alive connection.
    Closed,
    /// The peer answered, but not with parseable HTTP.
    Protocol,
    /// Any other I/O failure.
    Io,
}

impl ClientErrorKind {
    /// Whether an idempotent request that failed this way is worth
    /// retrying elsewhere (on another replica, or on a fresh
    /// connection). `Protocol` is not: the peer is answering, just not
    /// speaking HTTP — a different connection won't change that.
    pub fn is_retriable(self) -> bool {
        !matches!(self, ClientErrorKind::Protocol)
    }
}

/// A classified client failure: the [`ClientErrorKind`] plus the
/// underlying `io::Error`.
#[derive(Debug)]
pub struct ClientError {
    /// Failure class, for failover decisions.
    pub kind: ClientErrorKind,
    source: io::Error,
}

impl ClientError {
    fn new(kind: ClientErrorKind, source: io::Error) -> Self {
        ClientError { kind, source }
    }

    fn protocol(message: impl Into<String>) -> Self {
        ClientError::new(ClientErrorKind::Protocol, io::Error::other(message.into()))
    }

    /// Classify an `io::Error` from a read/write on an established
    /// connection. Timeouts surface as `WouldBlock` or `TimedOut`
    /// depending on platform; both mean "no progress before the
    /// deadline".
    fn from_io(source: io::Error) -> Self {
        let kind = match source.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientErrorKind::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ClientErrorKind::Closed,
            _ => ClientErrorKind::Io,
        };
        ClientError::new(kind, source)
    }

    /// The underlying I/O error.
    pub fn source_io(&self) -> &io::Error {
        &self.source
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ClientErrorKind::Connect => "connect failed",
            ClientErrorKind::Timeout => "timed out",
            ClientErrorKind::Closed => "connection closed",
            ClientErrorKind::Protocol => "malformed response",
            ClientErrorKind::Io => "i/o error",
        };
        write!(f, "{kind}: {}", self.source)
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<ClientError> for io::Error {
    fn from(err: ClientError) -> io::Error {
        io::Error::new(err.source.kind(), err.to_string())
    }
}

/// Connection tuning for [`HttpClient::connect_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on TCP connect. `None` leaves it to the OS (which can be
    /// minutes against a blackholed address).
    pub connect_timeout: Option<Duration>,
    /// Bound on each read while waiting for a response. `None` blocks
    /// indefinitely — a dead-but-accepting peer then hangs the caller,
    /// so anything that needs to fail over should set it.
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // The historical defaults of `HttpClient::connect`: OS
            // connect behavior, generous read bound so a wedged test
            // fails instead of hanging.
            connect_timeout: None,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One keep-alive connection to a narration server.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect, with a generous request timeout so a wedged test fails
    /// instead of hanging.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, &ClientConfig::default()).map_err(io::Error::from)
    }

    /// Connect to one concrete address under explicit timeouts,
    /// classifying the failure. This is the entry point failover code
    /// wants: a refused or blackholed replica comes back as
    /// [`ClientErrorKind::Connect`] within `config.connect_timeout`
    /// instead of hanging.
    pub fn connect_with(
        addr: SocketAddr,
        config: &ClientConfig,
    ) -> Result<HttpClient, ClientError> {
        let stream = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout),
            None => TcpStream::connect(addr),
        }
        .map_err(|e| ClientError::new(ClientErrorKind::Connect, e))?;
        Self::from_stream(stream, config)
    }

    fn from_stream(stream: TcpStream, config: &ClientConfig) -> Result<HttpClient, ClientError> {
        stream
            .set_read_timeout(config.read_timeout)
            .and_then(|()| stream.set_nodelay(true))
            .map_err(ClientError::from_io)?;
        let writer = stream.try_clone().map_err(ClientError::from_io)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request on the connection and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.try_request(method, path, body)
            .map_err(io::Error::from)
    }

    /// [`HttpClient::request`], with the failure classified for
    /// retry/failover decisions.
    pub fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        self.try_request_with(method, path, &[], body)
    }

    /// [`HttpClient::try_request`] with extra request headers — the
    /// coordinator's forwarding leg uses this to propagate
    /// `x-lantern-request-id` to the replica it routes to.
    pub fn try_request_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        self.try_send_with(method, path, headers, body)?;
        self.try_read_response()
    }

    /// Write one request without reading its response — the pipelining
    /// half of [`HttpClient::request`]. Send N requests back to back,
    /// then collect N responses with [`HttpClient::read_response`]; the
    /// server answers in request order.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        self.try_send(method, path, body).map_err(io::Error::from)
    }

    /// [`HttpClient::send`], with the failure classified.
    pub fn try_send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(), ClientError> {
        self.try_send_with(method, path, &[], body)
    }

    /// [`HttpClient::try_send`] with extra request headers.
    pub fn try_send_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<(), ClientError> {
        let body = body.unwrap_or("");
        // One write for head + body (see `http::write_response` for the
        // Nagle rationale).
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: lantern\r\n");
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        use std::fmt::Write as _;
        let _ = write!(head, "Content-Length: {}\r\n\r\n", body.len());
        let mut wire = head.into_bytes();
        wire.extend_from_slice(body.as_bytes());
        self.writer
            .write_all(&wire)
            .and_then(|()| self.writer.flush())
            .map_err(ClientError::from_io)
    }

    /// Read the next response off the connection (pairs with
    /// [`HttpClient::send`] for pipelined exchanges).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        self.try_read_response().map_err(io::Error::from)
    }

    /// [`HttpClient::read_response`], with the failure classified.
    pub fn try_read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                return Err(ClientError::new(
                    ClientErrorKind::Closed,
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a response arrived",
                    ),
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(ClientError::from_io(e)),
        }
        // "HTTP/1.1 200 OK"
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| ClientError::protocol(format!("malformed status line {line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(ClientError::new(
                        ClientErrorKind::Closed,
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed inside the response head",
                        ),
                    ))
                }
                Ok(_) => {}
                Err(e) => return Err(ClientError::from_io(e)),
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| ClientError::protocol("bad Content-Length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(ClientError::from_io)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::protocol("response body is not UTF-8"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A replica that accepts and then goes silent must fail the caller
    /// with `Timeout` inside the configured bound — not hang it. This
    /// is the contract the coordinator's failover is built on.
    #[test]
    fn stalled_peer_times_out_with_classified_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            // Accept, read nothing, answer nothing, hold the socket
            // open until the client gives up.
            let (sock, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(400));
            drop(sock);
        });
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            read_timeout: Some(Duration::from_millis(100)),
        };
        let mut client = HttpClient::connect_with(addr, &config).unwrap();
        let started = std::time::Instant::now();
        let err = client.try_request("GET", "/healthz", None).unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Timeout, "{err}");
        assert!(err.kind.is_retriable());
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "timeout must bound the wait: {:?}",
            started.elapsed()
        );
        stall.join().unwrap();
    }

    #[test]
    fn refused_connect_classifies_as_connect_error() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_millis(250)),
            ..ClientConfig::default()
        };
        let err = HttpClient::connect_with(addr, &config).unwrap_err();
        assert_eq!(err.kind, ClientErrorKind::Connect, "{err}");
        assert!(err.kind.is_retriable());
        // The io::Error conversion keeps the classification readable.
        let io_err: io::Error = err.into();
        assert!(io_err.to_string().contains("connect failed"), "{io_err}");
    }

    #[test]
    fn mid_response_close_classifies_as_closed_and_garbage_as_protocol() {
        for (wire, expected) in [
            // Head starts, then the peer dies.
            (
                &b"HTTP/1.1 200 OK\r\nContent-Le"[..],
                ClientErrorKind::Closed,
            ),
            // Complete head promising more body than is sent.
            (
                &b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"[..],
                ClientErrorKind::Closed,
            ),
            // Not HTTP at all.
            (&b"SMTP ready\r\n"[..], ClientErrorKind::Protocol),
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (mut sock, _) = listener.accept().unwrap();
                sock.write_all(wire).unwrap();
                // Closing the socket is the fault being injected.
            });
            let mut client = HttpClient::connect_with(addr, &ClientConfig::default()).unwrap();
            let err = client.try_request("GET", "/", None).unwrap_err();
            assert_eq!(err.kind, expected, "wire {wire:?}: {err}");
            server.join().unwrap();
        }
        assert!(!ClientErrorKind::Protocol.is_retriable());
    }
}
