//! A minimal blocking HTTP/1.1 client, just big enough to exercise the
//! server from tests, examples, and benches without `curl` — one
//! keep-alive connection, `Content-Length` bodies only.

use lantern_text::json::{JsonError, JsonValue};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body as UTF-8 text.
    pub body: String,
}

impl ClientResponse {
    /// Parse the body as JSON.
    pub fn json(&self) -> Result<JsonValue, JsonError> {
        JsonValue::parse(&self.body)
    }
}

/// One keep-alive connection to a narration server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connect, with a generous request timeout so a wedged test fails
    /// instead of hanging.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request on the connection and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.read_response()
    }

    /// Write one request without reading its response — the pipelining
    /// half of [`HttpClient::request`]. Send N requests back to back,
    /// then collect N responses with [`HttpClient::read_response`]; the
    /// server answers in request order.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        let body = body.unwrap_or("");
        // One write for head + body (see `http::write_response` for the
        // Nagle rationale).
        let mut wire = format!(
            "{method} {path} HTTP/1.1\r\nHost: lantern\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(body.as_bytes());
        self.writer.write_all(&wire)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next response off the connection (pairs with
    /// [`HttpClient::send`] for pipelined exchanges).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        // "HTTP/1.1 200 OK"
        let status = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::other(format!("malformed status line {line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| io::Error::other("bad Content-Length"))?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body =
            String::from_utf8(body).map_err(|_| io::Error::other("response body is not UTF-8"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
