//! Minimal HTTP/1.1 message support: exactly the subset the narration
//! service needs (request line + headers + `Content-Length` bodies,
//! keep-alive, plain-status responses), implemented over
//! [`std::io::BufRead`] so it works on any stream.
//!
//! This is deliberately not a general HTTP implementation. Chunked
//! transfer encoding, continuation lines, trailers, and HTTP/2 are all
//! rejected with explicit statuses rather than half-supported.

use std::io::{self, BufRead, Write};

/// Cap on the request line + header block, defending the worker pool
/// against unbounded header streams.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the wire (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Query parameters in order of appearance. Keys and values are
    /// percent-decoded (`%XX` escapes and `+`-as-space), so
    /// `?style=bulleted%20` and `?style=bulleted+` both read back as
    /// `"bulleted "`.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` when it isn't valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read off the wire. Each variant maps to
/// the HTTP status the server answers with before closing.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly between requests.
    ConnectionClosed,
    /// An I/O failure (including read timeouts on idle keep-alive
    /// connections).
    Io(io::Error),
    /// Malformed request line or header block → `400`.
    Malformed(String),
    /// Head grew beyond [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body advertised more than the configured cap → `413`.
    BodyTooLarge { advertised: usize, limit: usize },
    /// `POST` without a `Content-Length` → `411`.
    LengthRequired,
    /// `Transfer-Encoding` (chunked uploads) is not supported → `501`.
    UnsupportedTransferEncoding,
}

impl RequestError {
    /// The status code the server should answer with (`None` when the
    /// connection just ended and no answer is possible or needed).
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::ConnectionClosed | RequestError::Io(_) => None,
            RequestError::Malformed(_) => Some(400),
            RequestError::HeadTooLarge => Some(431),
            RequestError::BodyTooLarge { .. } => Some(413),
            RequestError::LengthRequired => Some(411),
            RequestError::UnsupportedTransferEncoding => Some(501),
        }
    }

    /// Human-readable diagnostic for the error body.
    pub fn message(&self) -> String {
        match self {
            RequestError::ConnectionClosed => "connection closed".into(),
            RequestError::Io(e) => format!("i/o error: {e}"),
            RequestError::Malformed(m) => m.clone(),
            RequestError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            RequestError::BodyTooLarge { advertised, limit } => {
                format!("request body of {advertised} bytes exceeds the {limit}-byte limit")
            }
            RequestError::LengthRequired => "POST requires a Content-Length header".into(),
            RequestError::UnsupportedTransferEncoding => {
                "Transfer-Encoding is not supported; send a Content-Length body".into()
            }
        }
    }
}

/// Read one request off a buffered stream.
///
/// `max_body_bytes` bounds the accepted `Content-Length`. Returns
/// [`RequestError::ConnectionClosed`] on clean EOF before any byte of a
/// new request (the normal end of a keep-alive connection).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    let mut head = Vec::with_capacity(512);
    // Accumulate up to the blank line separating head from body.
    loop {
        let n = read_line_into(reader, &mut head)?;
        if n == 0 {
            return if head.is_empty() {
                Err(RequestError::ConnectionClosed)
            } else {
                Err(RequestError::Malformed("truncated request head".into()))
            };
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    // HTTP/1.0 defaults to close; 1.1 defaults to keep-alive.
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(RequestError::UnsupportedTransferEncoding);
    }

    // Request-smuggling guard: duplicate Content-Length headers that
    // *disagree* are ambiguous — two parsers picking different body
    // boundaries is exactly how smuggled requests hide behind
    // intermediaries — so they are rejected outright. Identical
    // repeats are tolerated (RFC 9110 §8.6 allows folding them).
    let mut content_length = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        let parsed = v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed(format!("invalid Content-Length {v:?}")))?;
        match content_length {
            None => content_length = Some(parsed),
            Some(prev) if prev != parsed => {
                return Err(RequestError::Malformed(format!(
                    "conflicting Content-Length headers ({prev} vs {parsed})"
                )))
            }
            Some(_) => {}
        }
    }
    let body_len = match (method, content_length) {
        (_, Some(n)) if n > max_body_bytes => {
            return Err(RequestError::BodyTooLarge {
                advertised: n,
                limit: max_body_bytes,
            })
        }
        (_, Some(n)) => n,
        ("POST" | "PUT" | "PATCH", None) => return Err(RequestError::LengthRequired),
        (_, None) => 0,
    };
    let mut body = vec![0u8; body_len];
    if body_len > 0 {
        io::Read::read_exact(reader, &mut body).map_err(RequestError::Io)?;
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode_query_component(k), decode_query_component(v)),
            None => (decode_query_component(pair), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
        keep_alive,
    })
}

/// Percent-decode one `application/x-www-form-urlencoded` query
/// component: `+` decodes to a space and `%XX` to a byte. Invalid
/// escapes pass through literally (lenient, like most servers), and a
/// decode that is not valid UTF-8 falls back to the raw component.
fn decode_query_component(raw: &str) -> String {
    fn hex(b: Option<&u8>) -> Option<u8> {
        (*b? as char).to_digit(16).map(|d| d as u8)
    }
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| raw.to_string())
}

/// Read one `\n`-terminated line, appending (terminator included) to
/// `buf`; returns the number of bytes read (0 on EOF).
fn read_line_into<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> Result<usize, RequestError> {
    let before = buf.len();
    // `take` bounds each line so a single unterminated line can't grow
    // past the head cap either.
    let mut limited = io::Read::take(&mut *reader, (MAX_HEAD_BYTES + 2) as u64);
    limited
        .read_until(b'\n', buf)
        .map_err(RequestError::Io)
        .map(|_| buf.len() - before)
}

/// An HTTP response about to be written to the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (reason phrase derived via [`status_reason`]).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the fixed `Content-Type`/`Content-Length`/
    /// `Connection` set (e.g. `Retry-After` on a load-shed `503`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with the given status, content-typed as
    /// the Prometheus text exposition format (which is plain UTF-8
    /// text, versioned via the media-type parameter).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// First extra-header value with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Ensure the response carries the request-ID header exactly once.
    /// An already-present ID (e.g. echoed by a replica the request was
    /// forwarded to) wins — the ID must stay stable across hops.
    pub fn with_request_id(self, id: &str) -> Self {
        if self.header(REQUEST_ID_HEADER).is_some() {
            self
        } else {
            self.with_header(REQUEST_ID_HEADER, id)
        }
    }
}

/// The header that carries a request's ID from ingress to replica and
/// back to the client.
pub const REQUEST_ID_HEADER: &str = "x-lantern-request-id";

/// Canonical reason phrase for the statuses the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `response` onto the wire, flagging whether the connection
/// stays open. Head and body go out in a single `write_all` so the
/// response is one TCP segment when it fits — two small writes would
/// hand Nagle's algorithm a reason to stall the body behind a delayed
/// ACK.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut wire = Vec::with_capacity(128 + response.body.len());
    encode_response(&mut wire, response, keep_alive);
    writer.write_all(&wire)?;
    writer.flush()
}

/// Serialize `response` into `out` (same wire form as
/// [`write_response`], without touching a stream) — the event loop
/// appends responses to per-connection output buffers this way.
pub fn encode_response(out: &mut Vec<u8>, response: &Response, keep_alive: bool) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.reserve(head.len() + response.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&response.body);
}

/// Where one request ends inside a buffer of accumulated connection
/// bytes — the event loop's incremental framing step. The scanner only
/// finds the *boundary* (head terminator + `Content-Length` body); the
/// framed slice is then handed to [`read_request`] so every semantic
/// check (smuggling guards, size caps, method rules) has exactly one
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Not enough bytes for a complete request yet.
    Incomplete,
    /// One complete request (or one that [`read_request`] will reject
    /// from its head alone) occupies the first `len` bytes.
    Complete {
        /// Bytes of the frame, head terminator and body included.
        len: usize,
    },
}

/// Scan `buf` for the end of the first pipelined request.
///
/// A head larger than [`MAX_HEAD_BYTES`] and a body advertised past
/// `max_body_bytes` both report `Complete` at the point where
/// [`read_request`] can already produce the right error (431/413) —
/// the caller must not wait for bytes that will never be honoured.
pub fn frame_request(buf: &[u8], max_body_bytes: usize) -> FrameStatus {
    // Head terminator: the same two suffixes `read_request` accepts at
    // a line boundary.
    let mut head_end = None;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        if (i >= 1 && buf[i - 1] == b'\n') || (i >= 3 && &buf[i - 3..=i] == b"\r\n\r\n") {
            head_end = Some(i + 1);
            break;
        }
    }
    let Some(head_end) = head_end else {
        // No terminator yet: once past the head cap, stop waiting and
        // let `read_request` answer 431 with what accumulated.
        return if buf.len() > MAX_HEAD_BYTES {
            FrameStatus::Complete { len: buf.len() }
        } else {
            FrameStatus::Incomplete
        };
    };
    // Body length: first parseable Content-Length. Anything the parser
    // will reject from the head alone (non-UTF-8, conflicting lengths,
    // oversized body, Transfer-Encoding) frames at the head.
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return FrameStatus::Complete { len: head_end };
    };
    let mut body_len = 0usize;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            if let Ok(n) = value.trim().parse::<usize>() {
                body_len = n;
                break;
            }
        }
    }
    if body_len > max_body_bytes {
        return FrameStatus::Complete { len: head_end };
    }
    if buf.len() < head_end + body_len {
        return FrameStatus::Incomplete;
    }
    FrameStatus::Complete {
        len: head_end + body_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /narrate?style=bulleted&x HTTP/1.1\r\nHost: a\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/narrate");
        assert_eq!(req.query_param("style"), Some("bulleted"));
        assert_eq!(req.query_param("x"), Some(""));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req =
            parse("POST /narrate HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.body_utf8(), Some("body"));
        assert!(!req.keep_alive);
        assert_eq!(req.header("content-length"), Some("4"));
        assert_eq!(req.header("Content-Length"), Some("4"));
    }

    #[test]
    fn conflicting_content_lengths_are_400() {
        let err =
            parse("POST /narrate HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\nbody")
                .unwrap_err();
        assert_eq!(err.status(), Some(400));
        assert!(
            err.message().contains("conflicting Content-Length"),
            "{}",
            err.message()
        );
    }

    #[test]
    fn identical_duplicate_content_lengths_are_tolerated() {
        let req =
            parse("POST /narrate HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap();
        assert_eq!(req.body_utf8(), Some("body"));
    }

    #[test]
    fn conflicting_content_length_beats_invalid_second_value() {
        // One valid + one unparseable value is still malformed.
        let err =
            parse("POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: nope\r\n\r\nbody")
                .unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn query_params_are_percent_decoded() {
        let req = parse(
            "GET /narrate?style=bulleted%20&q=a%2Bb&plus=one+two HTTP/1.1\r\nHost: a\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.query_param("style"), Some("bulleted "));
        assert_eq!(req.query_param("q"), Some("a+b"));
        assert_eq!(req.query_param("plus"), Some("one two"));
    }

    #[test]
    fn encoded_query_keys_decode_too() {
        let req = parse("GET /x?no%63ache=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("nocache"), Some("1"));
    }

    #[test]
    fn invalid_percent_escapes_pass_through() {
        let req = parse("GET /x?a=100%&b=%zz&c=%4 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("a"), Some("100%"));
        assert_eq!(req.query_param("b"), Some("%zz"));
        assert_eq!(req.query_param("c"), Some("%4"));
    }

    #[test]
    fn http_10_defaults_to_close() {
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert!(matches!(parse(""), Err(RequestError::ConnectionClosed)));
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn post_without_length_is_411_and_chunked_is_501() {
        assert_eq!(
            parse("POST /narrate HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(411)
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(501)
        );
    }

    #[test]
    fn oversized_body_is_413() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 2048\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), Some(413));
        assert!(err.message().contains("2048"), "{}", err.message());
    }

    #[test]
    fn oversized_head_is_431() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&huge).unwrap_err().status(), Some(431));
    }

    #[test]
    fn response_wire_form_is_exact() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, r#"{"ok":true}"#), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        let resp = Response::json(503, r#"{"err":1}"#).with_header("Retry-After", "1");
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"err\":1}"), "{text}");
    }

    #[test]
    fn frame_scanner_finds_request_boundaries() {
        let full = b"POST /narrate HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        // Every strict prefix is incomplete; the exact frame completes.
        for cut in 0..full.len() {
            assert_eq!(
                frame_request(&full[..cut], 1024),
                FrameStatus::Incomplete,
                "cut at {cut}"
            );
        }
        assert_eq!(
            frame_request(full, 1024),
            FrameStatus::Complete { len: full.len() }
        );
        // Pipelined second request does not move the first boundary.
        let mut two = full.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(
            frame_request(&two, 1024),
            FrameStatus::Complete { len: full.len() }
        );
        // Bare-LF terminators frame like read_request accepts them.
        let lf = b"GET /healthz HTTP/1.1\nHost: a\n\n";
        assert_eq!(
            frame_request(lf, 1024),
            FrameStatus::Complete { len: lf.len() }
        );
    }

    #[test]
    fn frame_scanner_does_not_wait_for_unhonoured_bytes() {
        // Oversized advertised body: frame at the head so the parser
        // can answer 413 without the body ever arriving.
        let big = b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        match frame_request(big, 1024) {
            FrameStatus::Complete { len } => assert_eq!(len, big.len()),
            other => panic!("expected head-only frame, got {other:?}"),
        }
        let mut reader = BufReader::new(&big[..]);
        assert_eq!(
            read_request(&mut reader, 1024).unwrap_err().status(),
            Some(413)
        );
        // Head overflow without a terminator frames once past the cap.
        let huge = vec![b'a'; MAX_HEAD_BYTES + 10];
        assert!(matches!(
            frame_request(&huge, 1024),
            FrameStatus::Complete { .. }
        ));
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        assert_eq!(read_request(&mut reader, 1024).unwrap().path, "/healthz");
        assert_eq!(read_request(&mut reader, 1024).unwrap().path, "/stats");
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(RequestError::ConnectionClosed)
        ));
    }
}
