//! The long-lived server loop, in two flavours behind one
//! [`ServeConfig`]:
//!
//! * the **event-driven core** (default on Unix, `src/event.rs`): a
//!   single readiness-loop thread owns every socket non-blocking —
//!   accept, incremental parse, pipelining, ordered response writes —
//!   and dispatches complete requests to the bounded worker pool. When
//!   the dispatch queue saturates, requests are *shed* with `503` +
//!   `Retry-After` instead of queueing unboundedly.
//! * the **legacy blocking path** ([`ServeConfig::legacy_blocking`],
//!   and every non-Unix target): a [`TcpListener`] accept thread feeds
//!   whole connections to the pool over a
//!   [`std::sync::mpsc::sync_channel`]; each worker owns one
//!   connection at a time. Backpressure is structural — a full queue
//!   blocks the accept thread, pushing arrivals into the OS backlog.
//!
//! Both paths share the router, the counters, keep-alive handling, and
//! graceful shutdown semantics.

use crate::http::{read_request, write_response, Response};
use crate::router::{error_body_raw, Router};
use lantern_core::Translator;
use lantern_obs::{Recorder, RecorderConfig, Stage};
use lantern_text::json::JsonValue;
use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`serve`]. `Default` suits tests and the classroom
/// binary alike; every field has a CLI flag on `lantern-serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections. `0` means
    /// `available_parallelism` (min 2, so one slow request can't
    /// starve the health check on a single-core host).
    pub workers: usize,
    /// Accepted connections that may queue waiting for a worker before
    /// the accept thread blocks.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Idle read timeout on keep-alive connections; an idle connection
    /// is closed after this long so workers can't be parked forever.
    /// On the event path this also bounds slow-loris peers parked on a
    /// partial request head.
    pub read_timeout: Duration,
    /// Open connections the event loop will hold at once; arrivals
    /// past the cap are closed immediately. Ignored on the legacy
    /// path, where the pool size is the cap.
    pub max_conns: usize,
    /// Use the thread-per-connection blocking path instead of the
    /// event-driven readiness loop. Non-Unix targets always take the
    /// blocking path.
    pub legacy_blocking: bool,
    /// Record per-stage latency histograms and serve `GET /metrics`.
    /// Off, the recorder is inert (one atomic load per request) and
    /// `/metrics` answers 404.
    pub metrics: bool,
    /// Capture threshold for the slow-request ring served at
    /// `GET /debug/slow`, in milliseconds. `0` captures every request
    /// (the ring is bounded, so this is cheap and makes request IDs
    /// observable without artificial slowness).
    pub slow_log_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            max_conns: 4096,
            legacy_blocking: false,
            metrics: true,
            slow_log_ms: 0,
        }
    }
}

impl ServeConfig {
    /// The observability recorder this config describes — built once
    /// per server and shared between the router and the serving core.
    pub(crate) fn recorder(&self) -> Arc<Recorder> {
        Arc::new(Recorder::new(RecorderConfig {
            enabled: self.metrics,
            slow_log_ms: self.slow_log_ms,
            ..RecorderConfig::default()
        }))
    }
}

impl ServeConfig {
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
    }
}

/// Shared atomic counters, incremented by the router and the
/// connection loop; snapshot with [`ServeStats::snapshot`].
#[derive(Debug)]
pub struct ServeStats {
    /// TCP connections accepted.
    pub connections: AtomicU64,
    /// HTTP requests routed (any endpoint, any outcome).
    pub requests_total: AtomicU64,
    /// `POST /narrate` requests received.
    pub narrate_requests: AtomicU64,
    /// `POST /narrate/batch` requests received.
    pub batch_requests: AtomicU64,
    /// Plan documents received inside batch envelopes.
    pub batch_items: AtomicU64,
    /// Narrations completed (single + batch items).
    pub narrate_ok: AtomicU64,
    /// Narrations failed (single + batch items).
    pub narrate_errors: AtomicU64,
    /// `POST /narrate/diff` requests received.
    pub diff_requests: AtomicU64,
    /// `POST /narrate/diff/batch` requests received.
    pub diff_batch_requests: AtomicU64,
    /// Alternative plans received inside diff-batch envelopes.
    pub diff_batch_items: AtomicU64,
    /// Diff narrations completed (single + batch items).
    pub diff_ok: AtomicU64,
    /// Diff narrations failed (single + batch items).
    pub diff_errors: AtomicU64,
    /// Requests for unknown paths.
    pub not_found: AtomicU64,
    /// Responses with status ≥ 400, protocol errors included.
    pub error_responses: AtomicU64,
    /// Panics contained by the worker pool (each cost one connection,
    /// never a worker).
    pub panics: AtomicU64,
    /// Requests refused by admission control: `503`s answered when the
    /// dispatch queue was full, plus connections closed at the
    /// `max_conns` cap (event path only).
    pub shed_requests: AtomicU64,
    /// Requests that arrived pipelined — read off a connection before
    /// the response to an earlier request on it was written (event
    /// path only).
    pub pipelined_requests: AtomicU64,
    /// Gauge: requests sitting in the dispatch queue, accepted but not
    /// yet picked up by a worker (event path only).
    pub queue_depth: AtomicU64,
    /// Gauge: requests currently being handled (incremented on entry to
    /// the router, decremented when the handler returns — so a `/stats`
    /// response always counts at least itself).
    pub requests_in_flight: AtomicU64,
    started: Instant,
}

impl ServeStats {
    /// Fresh zeroed counters.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ServeStats {
            connections: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            narrate_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_items: AtomicU64::new(0),
            narrate_ok: AtomicU64::new(0),
            narrate_errors: AtomicU64::new(0),
            diff_requests: AtomicU64::new(0),
            diff_batch_requests: AtomicU64::new(0),
            diff_batch_items: AtomicU64::new(0),
            diff_ok: AtomicU64::new(0),
            diff_errors: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            error_responses: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shed_requests: AtomicU64::new(0),
            pipelined_requests: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Time since the stats (i.e. the server) came up.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// A consistent-enough copy of the counters (each counter is read
    /// once, atomically; the set is not cross-counter atomic).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests_total: self.requests_total.load(Ordering::Relaxed),
            narrate_requests: self.narrate_requests.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            batch_items: self.batch_items.load(Ordering::Relaxed),
            narrate_ok: self.narrate_ok.load(Ordering::Relaxed),
            narrate_errors: self.narrate_errors.load(Ordering::Relaxed),
            diff_requests: self.diff_requests.load(Ordering::Relaxed),
            diff_batch_requests: self.diff_batch_requests.load(Ordering::Relaxed),
            diff_batch_items: self.diff_batch_items.load(Ordering::Relaxed),
            diff_ok: self.diff_ok.load(Ordering::Relaxed),
            diff_errors: self.diff_errors.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            pipelined_requests: self.pipelined_requests.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            requests_in_flight: self.requests_in_flight.load(Ordering::Relaxed),
            uptime_ms: self.uptime().as_millis() as u64,
            uptime_seconds: self.uptime().as_secs(),
        }
    }
}

/// Plain-data counter snapshot, also the `GET /stats` response body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServeStats::connections`].
    pub connections: u64,
    /// See [`ServeStats::requests_total`].
    pub requests_total: u64,
    /// See [`ServeStats::narrate_requests`].
    pub narrate_requests: u64,
    /// See [`ServeStats::batch_requests`].
    pub batch_requests: u64,
    /// See [`ServeStats::batch_items`].
    pub batch_items: u64,
    /// See [`ServeStats::narrate_ok`].
    pub narrate_ok: u64,
    /// See [`ServeStats::narrate_errors`].
    pub narrate_errors: u64,
    /// See [`ServeStats::diff_requests`].
    pub diff_requests: u64,
    /// See [`ServeStats::diff_batch_requests`].
    pub diff_batch_requests: u64,
    /// See [`ServeStats::diff_batch_items`].
    pub diff_batch_items: u64,
    /// See [`ServeStats::diff_ok`].
    pub diff_ok: u64,
    /// See [`ServeStats::diff_errors`].
    pub diff_errors: u64,
    /// See [`ServeStats::not_found`].
    pub not_found: u64,
    /// See [`ServeStats::error_responses`].
    pub error_responses: u64,
    /// See [`ServeStats::panics`].
    pub panics: u64,
    /// See [`ServeStats::shed_requests`].
    pub shed_requests: u64,
    /// See [`ServeStats::pipelined_requests`].
    pub pipelined_requests: u64,
    /// See [`ServeStats::queue_depth`].
    pub queue_depth: u64,
    /// See [`ServeStats::requests_in_flight`].
    pub requests_in_flight: u64,
    /// Milliseconds since the server came up.
    pub uptime_ms: u64,
    /// Whole seconds since the server came up.
    pub uptime_seconds: u64,
}

impl StatsSnapshot {
    /// The snapshot as the `GET /stats` JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj = BTreeMap::new();
        for (key, value) in [
            ("connections", self.connections),
            ("requests_total", self.requests_total),
            ("narrate_requests", self.narrate_requests),
            ("batch_requests", self.batch_requests),
            ("batch_items", self.batch_items),
            ("narrate_ok", self.narrate_ok),
            ("narrate_errors", self.narrate_errors),
            ("diff_requests", self.diff_requests),
            ("diff_batch_requests", self.diff_batch_requests),
            ("diff_batch_items", self.diff_batch_items),
            ("diff_ok", self.diff_ok),
            ("diff_errors", self.diff_errors),
            ("not_found", self.not_found),
            ("error_responses", self.error_responses),
            ("panics", self.panics),
            ("shed_requests", self.shed_requests),
            ("pipelined_requests", self.pipelined_requests),
            ("queue_depth", self.queue_depth),
            ("requests_in_flight", self.requests_in_flight),
            ("uptime_ms", self.uptime_ms),
            ("uptime_seconds", self.uptime_seconds),
        ] {
            obj.insert(key.to_string(), JsonValue::Number(value as f64));
        }
        JsonValue::Object(obj)
    }
}

/// Handle to a running server: address introspection, live stats, and
/// graceful shutdown. Dropping the handle also shuts the server down
/// (best-effort, errors swallowed).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Event path only: wakes the readiness loop so it observes the
    /// shutdown flag without waiting out a poll timeout. The legacy
    /// path pokes its accept thread over TCP instead.
    event_waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral
    /// port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot, without going through `GET /stats`.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, drain queued connections,
    /// finish in-flight requests, join every thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> io::Result<()> {
        if self.accept_thread.is_none() {
            return Ok(());
        }
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.event_waker {
            // Event path: one byte down the self-pipe and the loop sees
            // the flag on its next iteration.
            waker();
        } else {
            // The accept thread is parked in `accept()`; poke it awake
            // with a throwaway connection so it observes the flag. A
            // wildcard bind (0.0.0.0 / [::]) is not connectable
            // everywhere, so the poke targets the loopback equivalent
            // of the bound port.
            let mut poke_addr = self.addr;
            if poke_addr.ip().is_unspecified() {
                poke_addr.set_ip(match poke_addr {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect_timeout(&poke_addr, Duration::from_secs(1));
        }
        if let Some(t) = self.accept_thread.take() {
            t.join()
                .map_err(|_| io::Error::other("accept thread panicked"))?;
        }
        // Accept thread exit drops the queue sender; workers drain what
        // is queued, then see the disconnect and stop.
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| io::Error::other("worker thread panicked"))?;
        }
        Ok(())
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Boot a narration server over `translator` on `addr`.
///
/// Returns once the listener is bound and the worker pool is up; the
/// returned [`ServerHandle`] outlives this call and owns every spawned
/// thread. Bind `"127.0.0.1:0"` to get an ephemeral port (read it back
/// with [`ServerHandle::addr`]).
pub fn serve<T>(
    translator: T,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle>
where
    T: Translator + Send + Sync + 'static,
{
    serve_with_cache(translator, None, addr, config)
}

/// [`serve`], with the translator's narration-cache admin surface
/// attached: the router honours `?nocache=1`, routes
/// `POST /cache/clear`, and merges cache counters into `GET /stats`.
/// `cache` is typically the *same* object as `translator` (an
/// `Arc<CachedTranslator<_>>`, or a service wrapping one), shared via
/// `Arc`.
pub fn serve_with_cache<T>(
    translator: T,
    cache: Option<Arc<dyn lantern_cache::CacheControl + Send + Sync>>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle>
where
    T: Translator + Send + Sync + 'static,
{
    serve_with_parts(translator, cache, None, addr, config)
}

/// The full-surface entry point: [`serve_with_cache`], plus an
/// optional plan-diff backend. With `diff` present the router
/// additionally routes `POST /narrate/diff` (one base/alternative
/// pair) and `POST /narrate/diff/batch` (one base vs N alternatives,
/// ranked by informativeness); without it those paths stay 404, like
/// `/cache/clear` without a cache.
pub fn serve_with_parts<T>(
    translator: T,
    cache: Option<Arc<dyn lantern_cache::CacheControl + Send + Sync>>,
    diff: Option<Arc<dyn lantern_core::DiffTranslator + Send + Sync>>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle>
where
    T: Translator + Send + Sync + 'static,
{
    serve_node(translator, cache, diff, None, addr, config)
}

/// [`serve_with_parts`], plus an optional catalog admin surface. With
/// `catalog` present the router additionally routes `GET /catalog` and
/// `POST /catalog/apply`, which is what lets a cluster coordinator
/// replicate POEM catalog mutations to this node and probe its
/// version/lag.
pub fn serve_node<T>(
    translator: T,
    cache: Option<Arc<dyn lantern_cache::CacheControl + Send + Sync>>,
    diff: Option<Arc<dyn lantern_core::DiffTranslator + Send + Sync>>,
    catalog: Option<Arc<dyn crate::catalog::CatalogControl + Send + Sync>>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle>
where
    T: Translator + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    serve_on_listener(translator, cache, diff, catalog, listener, config)
}

/// [`serve_node`] over a listener the caller already bound. This is
/// the restart path: rebinding a just-vacated port usually trips over
/// connections lingering in `TIME_WAIT`, so a replica that must come
/// back on the *same* address binds through [`reusable_listener`]
/// (`SO_REUSEADDR`) and hands the listener in here.
pub fn serve_on_listener<T>(
    translator: T,
    cache: Option<Arc<dyn lantern_cache::CacheControl + Send + Sync>>,
    diff: Option<Arc<dyn lantern_core::DiffTranslator + Send + Sync>>,
    catalog: Option<Arc<dyn crate::catalog::CatalogControl + Send + Sync>>,
    listener: TcpListener,
    config: ServeConfig,
) -> io::Result<ServerHandle>
where
    T: Translator + Send + Sync + 'static,
{
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServeStats::new());
    let router = Arc::new(
        Router::with_catalog(translator, Arc::clone(&stats), cache, diff, catalog)
            .with_obs(config.recorder()),
    );

    #[cfg(unix)]
    if !config.legacy_blocking {
        let (mut threads, waker) = crate::event::serve_event(
            listener,
            router,
            Arc::clone(&stats),
            config,
            Arc::clone(&shutdown),
        )?;
        let event_thread = threads.remove(0);
        return Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            stats,
            accept_thread: Some(event_thread),
            workers: threads,
            event_waker: Some(waker),
        });
    }

    let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.queue_depth);
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let workers = (0..config.effective_workers())
        .map(|_| {
            let conn_rx = Arc::clone(&conn_rx);
            let router = Arc::clone(&router);
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || worker_loop(&conn_rx, &*router, &config, &shutdown, &stats))
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // Mirror the event path's `queue_depth` gauge: count the
                // connection into the queue before the (possibly
                // blocking) send; the worker decrements on dequeue.
                stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                if conn_tx.send(stream).is_err() {
                    stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
            }
            // `conn_tx` drops here; workers drain and stop.
        })
    };

    Ok(ServerHandle {
        addr: local_addr,
        shutdown,
        stats,
        accept_thread: Some(accept_thread),
        workers,
        event_waker: None,
    })
}

fn worker_loop<T: Translator>(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    router: &Router<T>,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    stats: &ServeStats,
) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let conn = match conn_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match conn {
            Ok(stream) => {
                stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                // A panic while serving (a buggy Translator impl, say)
                // must not shrink the pool for the server's lifetime:
                // contain it to the connection and keep the worker.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, router, config, shutdown, stats);
                }));
                if outcome.is_err() {
                    stats.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => return, // channel disconnected: shutdown
        }
    }
}

/// Serve one connection until the peer closes, a protocol error
/// terminates it, keep-alive is declined, or shutdown begins.
fn handle_connection<T: Translator>(
    stream: TcpStream,
    router: &Router<T>,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    stats: &ServeStats,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    // Responses are written as one buffer; without NODELAY the kernel
    // would still sit on them waiting for ACKs between keep-alive
    // requests.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        // Socket reads/writes happen outside any request trace (the
        // trace begins in the router), so the read/write stages go
        // straight to the recorder's histograms.
        let read_started = Instant::now();
        match read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => {
                router
                    .obs()
                    .record_stage(Stage::Read, read_started.elapsed().as_nanos() as u64);
                let response = router.handle(&request);
                // Stop advertising keep-alive once shutdown begins so
                // draining connections wind down promptly.
                let keep_alive = request.keep_alive && !shutdown.load(Ordering::SeqCst);
                let write_started = Instant::now();
                write_response(&mut writer, &response, keep_alive)?;
                router
                    .obs()
                    .record_stage(Stage::Write, write_started.elapsed().as_nanos() as u64);
                if !keep_alive {
                    return Ok(());
                }
            }
            Err(err) => {
                // Protocol errors get a best-effort structured reply on
                // the way out; clean EOF and I/O errors just close.
                if let Some(status) = err.status() {
                    stats.error_responses.fetch_add(1, Ordering::Relaxed);
                    let body = error_body_raw("http", &err.message(), status);
                    let response = Response::json(status, body.to_string_compact());
                    let _ = write_response(&mut writer, &response, false);
                }
                return Ok(());
            }
        }
    }
}

/// Bind a listener with `SO_REUSEADDR`, so an address whose previous
/// occupant just shut down (leaving accepted connections in
/// `TIME_WAIT`) can be re-bound immediately. Restarting a replica on
/// its original port — the cluster fault harness does this constantly —
/// fails sporadically with `EADDRINUSE` through a plain
/// [`TcpListener::bind`].
///
/// On Linux this goes through a raw socket so the option can be set
/// before `bind(2)`; elsewhere (std exposes no `setsockopt`) it falls
/// back to a plain bind, which is only a liability on the restart path.
/// IPv4 only on the raw path; IPv6 addresses take the fallback.
pub fn reusable_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    if let SocketAddr::V4(v4) = addr {
        use std::os::fd::FromRawFd;
        use std::os::raw::{c_int, c_void};

        const AF_INET: c_int = 2;
        const SOCK_STREAM: c_int = 1;
        const SOCK_CLOEXEC: c_int = 0o2000000;
        const SOL_SOCKET: c_int = 1;
        const SO_REUSEADDR: c_int = 2;

        #[repr(C)]
        struct SockAddrIn {
            sin_family: u16,
            sin_port: u16,
            sin_addr: u32,
            sin_zero: [u8; 8],
        }

        extern "C" {
            fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
            fn setsockopt(
                fd: c_int,
                level: c_int,
                name: c_int,
                value: *const c_void,
                len: u32,
            ) -> c_int;
            fn bind(fd: c_int, addr: *const SockAddrIn, len: u32) -> c_int;
            fn listen(fd: c_int, backlog: c_int) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: c_int| -> io::Error {
            let err = io::Error::last_os_error();
            unsafe { close(fd) };
            err
        };
        let one: c_int = 1;
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                &one as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            )
        };
        if rc != 0 {
            return Err(fail(fd));
        }
        let sockaddr = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: v4.port().to_be(),
            // Network byte order: the octets laid out as written.
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0; 8],
        };
        if unsafe { bind(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as u32) } != 0 {
            return Err(fail(fd));
        }
        if unsafe { listen(fd, 1024) } != 0 {
            return Err(fail(fd));
        }
        return Ok(unsafe { TcpListener::from_raw_fd(fd) });
    }
    TcpListener::bind(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use lantern_core::RuleTranslator;
    use lantern_pool::default_pg_store;

    fn boot() -> ServerHandle {
        serve(
            RuleTranslator::new(default_pg_store()),
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("bind ephemeral port")
    }

    #[test]
    fn serves_keep_alive_requests_on_one_connection() {
        let handle = boot();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            let resp = client
                .post(
                    "/narrate",
                    r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#,
                )
                .unwrap();
            assert_eq!(resp.status, 200);
            assert!(resp.body.contains("sequential scan on orders"));
        }
        let stats = handle.stats();
        assert_eq!(stats.narrate_ok, 3);
        assert_eq!(stats.connections, 1, "keep-alive reuses one connection");
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn protocol_errors_answer_before_closing() {
        let handle = boot();
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        raw.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        assert!(buf.contains("\"kind\":\"http\""), "{buf}");
        drop(raw);
        // Protocol-level failures count toward error_responses too.
        assert_eq!(handle.stats().error_responses, 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn shutdown_then_connect_refused() {
        let handle = boot();
        let addr = handle.addr();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        handle.shutdown().unwrap();
        // The listener is gone: a fresh connection cannot complete an
        // HTTP exchange (bind may be refused outright, or accepted by
        // the OS backlog and then reset).
        let refused = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Err(_) => true,
            Ok(mut stream) => {
                use std::io::{Read, Write};
                stream
                    .set_read_timeout(Some(Duration::from_millis(500)))
                    .unwrap();
                let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = Vec::new();
                matches!(stream.read_to_end(&mut buf), Ok(0) | Err(_))
            }
        };
        assert!(refused, "server still answering after shutdown");
    }

    #[test]
    fn panics_are_contained_per_connection() {
        use lantern_core::{NarrationRequest, NarrationResponse};

        struct Panicky;
        impl Translator for Panicky {
            fn backend(&self) -> &str {
                "panicky"
            }
            fn narrate(
                &self,
                _req: &NarrationRequest,
            ) -> Result<NarrationResponse, lantern_core::LanternError> {
                panic!("translator bug")
            }
        }

        // One worker: if the panic killed it, nothing could ever answer
        // again.
        let handle = serve(
            Panicky,
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut doomed = HttpClient::connect(handle.addr()).unwrap();
        // The panic drops the connection mid-exchange; the client sees
        // an error, not a hang.
        assert!(doomed.post("/narrate", "{}").is_err());
        drop(doomed);

        let mut client = HttpClient::connect(handle.addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        assert_eq!(handle.stats().panics, 1);
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn restart_rebinds_the_same_port_through_reusable_listener() {
        // Boot, serve one request, shut down, and come back on the
        // *same* port — the replica-restart sequence the cluster fault
        // harness leans on. The first bind goes through
        // `reusable_listener` too so the port is reusable from birth.
        let listener = reusable_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = serve_on_listener(
            RuleTranslator::new(default_pg_store()),
            None,
            None,
            None,
            listener,
            ServeConfig::default(),
        )
        .unwrap();
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        handle.shutdown().unwrap();

        let listener = reusable_listener(addr).expect("rebind the vacated port");
        let handle = serve_on_listener(
            RuleTranslator::new(default_pg_store()),
            None,
            None,
            None,
            listener,
            ServeConfig::default(),
        )
        .unwrap();
        assert_eq!(handle.addr(), addr);
        let mut client = HttpClient::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        handle.shutdown().unwrap();
    }

    #[test]
    fn drop_shuts_down_quietly() {
        // Dropping the handle must join every thread without hanging or
        // panicking; reaching the end of this test is the assertion.
        let handle = boot();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        drop(client);
        drop(handle);
    }
}
