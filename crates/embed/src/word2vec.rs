//! Word2Vec: skip-gram with negative sampling (Mikolov et al. \[38\]),
//! implemented from scratch.

use crate::corpus::Corpus;
use crate::embedder::{Embedder, EmbedderKind, Embedding};
use lantern_nn::matrix::{seeded_rng, sigmoid, Matrix};
use lantern_text::Vocab;
use rand::Rng;

/// Skip-gram/negative-sampling trainer.
#[derive(Debug, Clone)]
pub struct Word2VecTrainer {
    /// Vector dimensionality.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub learning_rate: f32,
    /// Minimum token frequency.
    pub min_count: usize,
}

impl Default for Word2VecTrainer {
    fn default() -> Self {
        Word2VecTrainer {
            dim: 32,
            window: 2,
            negatives: 5,
            epochs: 8,
            learning_rate: 0.05,
            min_count: 1,
        }
    }
}

impl Embedder for Word2VecTrainer {
    fn name(&self) -> &'static str {
        "Word2Vec"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    // The SGNS inner loops index `sent` / `grad_in` by position on
    // purpose (hot kernel, parallel arrays); iterator rewrites obscure
    // the update equations.
    #[allow(clippy::needless_range_loop)]
    fn train(&self, corpus: &Corpus, seed: u64) -> Embedding {
        let vocab = Vocab::from_corpus(&corpus.sentences, self.min_count);
        let v = vocab.len();
        let mut rng = seeded_rng(seed);
        let mut w_in = Matrix::uniform(v, self.dim, 0.5 / self.dim as f32, &mut rng);
        let mut w_out = Matrix::zeros(v, self.dim);

        // Unigram^0.75 negative-sampling table.
        let mut freq = vec![0usize; v];
        for s in &corpus.sentences {
            for t in s {
                freq[vocab.id(t)] += 1;
            }
        }
        let mut neg_table = Vec::with_capacity(4096);
        let total: f64 = freq.iter().skip(4).map(|&f| (f as f64).powf(0.75)).sum();
        if total > 0.0 {
            for (id, &f) in freq.iter().enumerate().skip(4) {
                let slots = (((f as f64).powf(0.75) / total) * 4096.0).ceil() as usize;
                for _ in 0..slots.max(if f > 0 { 1 } else { 0 }) {
                    neg_table.push(id);
                }
            }
        }
        if neg_table.is_empty() {
            neg_table.push(4.min(v - 1));
        }

        let ids: Vec<Vec<usize>> = corpus
            .sentences
            .iter()
            .map(|s| s.iter().map(|t| vocab.id(t)).collect())
            .collect();
        let total_steps = (self.epochs * corpus.token_count()).max(1);
        let mut step = 0usize;
        for _epoch in 0..self.epochs {
            for sent in &ids {
                for (center_pos, &center) in sent.iter().enumerate() {
                    if center <= 3 {
                        continue;
                    }
                    let lr = self.learning_rate * (1.0 - step as f32 / total_steps as f32).max(0.1);
                    step += 1;
                    let lo = center_pos.saturating_sub(self.window);
                    let hi = (center_pos + self.window).min(sent.len() - 1);
                    for ctx_pos in lo..=hi {
                        if ctx_pos == center_pos || sent[ctx_pos] <= 3 {
                            continue;
                        }
                        let context = sent[ctx_pos];
                        // One positive + `negatives` negative updates.
                        let mut grad_in = vec![0.0f32; self.dim];
                        for k in 0..=self.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (neg_table[rng.gen_range(0..neg_table.len())], 0.0)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let dot: f32 = w_in
                                .row(center)
                                .iter()
                                .zip(w_out.row(target))
                                .map(|(a, b)| a * b)
                                .sum();
                            let g = (sigmoid(dot) - label) * lr;
                            for d in 0..self.dim {
                                grad_in[d] += g * w_out.get(target, d);
                            }
                            for d in 0..self.dim {
                                let upd = g * w_in.get(center, d);
                                let cur = w_out.get(target, d);
                                w_out.set(target, d, cur - upd);
                            }
                        }
                        for d in 0..self.dim {
                            let cur = w_in.get(center, d);
                            w_in.set(center, d, cur - grad_in[d]);
                        }
                    }
                }
            }
        }
        Embedding {
            vocab,
            dim: self.dim,
            table: w_in,
            kind: EmbedderKind::Word2Vec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus where `red`/`blue` share contexts and `seven` does not.
    fn structured_corpus() -> Corpus {
        let mut sentences = Vec::new();
        for _ in 0..30 {
            for color in ["red", "blue", "green"] {
                sentences.push(format!("the {color} car drives on the road"));
                sentences.push(format!("a {color} ball bounces in the garden"));
                sentences.push(format!("she painted the wall {color} yesterday"));
            }
            sentences.push("seven plus three equals ten exactly".to_string());
            sentences.push("numbers like seven and three are odd".to_string());
        }
        Corpus::from_sentences(&sentences)
    }

    #[test]
    fn colors_cluster_together() {
        let trainer = Word2VecTrainer {
            epochs: 6,
            ..Default::default()
        };
        let e = trainer.train(&structured_corpus(), 7);
        let red_blue = e.cosine("red", "blue");
        let red_seven = e.cosine("red", "seven");
        assert!(
            red_blue > red_seven,
            "red-blue {red_blue} should beat red-seven {red_seven}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let trainer = Word2VecTrainer {
            epochs: 2,
            ..Default::default()
        };
        let c = structured_corpus();
        let a = trainer.train(&c, 3);
        let b = trainer.train(&c, 3);
        assert_eq!(a.table.data, b.table.data);
    }

    #[test]
    fn table_shape() {
        let trainer = Word2VecTrainer {
            dim: 16,
            epochs: 1,
            ..Default::default()
        };
        let e = trainer.train(&structured_corpus(), 1);
        assert_eq!(e.dim, 16);
        assert_eq!(e.table.rows, e.vocab.len());
        assert_eq!(e.table.cols, 16);
    }

    #[test]
    fn vectors_move_from_init() {
        let trainer = Word2VecTrainer {
            epochs: 3,
            ..Default::default()
        };
        let c = structured_corpus();
        let e = trainer.train(&c, 5);
        let norm: f32 = e.vector("red").iter().map(|v| v * v).sum();
        assert!(norm > 1e-4, "vector barely trained: {norm}");
    }
}
