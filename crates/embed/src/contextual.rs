//! Contextual embedders standing in for ELMo and BERT (see DESIGN.md
//! substitution table).
//!
//! * [`ElmoStyleBiLm`] — a bidirectional LSTM language model (ELMo's
//!   architecture \[45\], scaled down): a forward LSTM predicts the next
//!   token, a backward LSTM the previous one; a token's contextual
//!   representation is the concatenation of the two hidden states.
//! * [`BertStyleEncoder`] — a masked-token self-attention encoder
//!   (BERT's objective \[23\], one attention layer): a masked position
//!   attends over its context to reconstruct the missing token.
//!
//! QEP2Seq's decoder consumes *static per-token* tables, so both models
//! are distilled after training: each vocabulary type's vector is the
//! mean of its contextual vectors over the training corpus (for ELMo
//! this mirrors the paper's "linear combination of the biLM layers").

use crate::corpus::Corpus;
use crate::embedder::{Embedder, EmbedderKind, Embedding};
use lantern_nn::attention::{AdditiveAttention, AttnGrads};
use lantern_nn::lstm::{LstmCell, LstmGrads, LstmState};
use lantern_nn::matrix::{seeded_rng, softmax, Matrix};
use lantern_text::Vocab;
use rand::Rng;

/// ELMo-style bidirectional LSTM language model.
#[derive(Debug, Clone)]
pub struct ElmoStyleBiLm {
    /// Output dimensionality (= 2x LSTM hidden size; must be even).
    pub dim: usize,
    /// Input embedding size.
    pub input_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for ElmoStyleBiLm {
    fn default() -> Self {
        ElmoStyleBiLm {
            dim: 32,
            input_dim: 16,
            epochs: 3,
            learning_rate: 0.1,
        }
    }
}

impl Embedder for ElmoStyleBiLm {
    fn name(&self) -> &'static str {
        "ELMo"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn train(&self, corpus: &Corpus, seed: u64) -> Embedding {
        assert!(
            self.dim.is_multiple_of(2),
            "ELMo dim must be even (fwd + bwd halves)"
        );
        let h = self.dim / 2;
        let vocab = Vocab::from_corpus(&corpus.sentences, 1);
        let v = vocab.len();
        let mut rng = seeded_rng(seed);
        let mut embed = Matrix::uniform(v, self.input_dim, 0.1, &mut rng);
        let mut fwd = LstmCell::new(self.input_dim, h, 0.1, &mut rng);
        let mut bwd = LstmCell::new(self.input_dim, h, 0.1, &mut rng);
        let mut w_fwd = Matrix::uniform(v, h, 0.1, &mut rng);
        let mut w_bwd = Matrix::uniform(v, h, 0.1, &mut rng);

        let ids: Vec<Vec<usize>> = corpus
            .sentences
            .iter()
            .map(|s| s.iter().map(|t| vocab.id(t)).collect())
            .collect();

        for _ in 0..self.epochs {
            for sent in &ids {
                if sent.len() < 2 {
                    continue;
                }
                train_direction(
                    sent,
                    &mut embed,
                    &mut fwd,
                    &mut w_fwd,
                    self.learning_rate,
                    false,
                );
                train_direction(
                    sent,
                    &mut embed,
                    &mut bwd,
                    &mut w_bwd,
                    self.learning_rate,
                    true,
                );
            }
        }

        // Distillation: per-type mean of [h_fwd; h_bwd].
        let mut table = Matrix::zeros(v, self.dim);
        let mut counts = vec![0usize; v];
        for sent in &ids {
            let fwd_states = run_states(sent, &embed, &fwd, false);
            let bwd_states = run_states(sent, &embed, &bwd, true);
            for (i, &tok) in sent.iter().enumerate() {
                let row = table.row_mut(tok);
                for (k, val) in fwd_states.row(i).iter().enumerate() {
                    row[k] += val;
                }
                for (k, val) in bwd_states.row(sent.len() - 1 - i).iter().enumerate() {
                    row[h + k] += val;
                }
                counts[tok] += 1;
            }
        }
        for (tok, &c) in counts.iter().enumerate() {
            if c > 0 {
                for val in table.row_mut(tok) {
                    *val /= c as f32;
                }
            }
        }
        Embedding {
            vocab,
            dim: self.dim,
            table,
            kind: EmbedderKind::Elmo,
        }
    }
}

/// Gather the embedding rows of `toks` into a `[T x input]` matrix for
/// the batched LSTM sequence API.
fn gather_rows(toks: &[usize], embed: &Matrix) -> Matrix {
    let mut xs = Matrix::zeros(toks.len(), embed.cols);
    for (t, &tok) in toks.iter().enumerate() {
        xs.row_mut(t).copy_from_slice(embed.row(tok));
    }
    xs
}

/// Run one LSTM direction and collect hidden states (`T x hidden`,
/// sentence reversed for the backward model) — one batched
/// input-projection GEMM via `forward_seq`.
fn run_states(sent: &[usize], embed: &Matrix, cell: &LstmCell, reverse: bool) -> Matrix {
    let seq: Vec<usize> = if reverse {
        sent.iter().rev().cloned().collect()
    } else {
        sent.to_vec()
    };
    let (states, _) = cell.forward_seq(&LstmState::zeros(cell.hidden), &gather_rows(&seq, embed));
    states
}

/// One SGD pass of next-token prediction over a sentence (optionally
/// reversed), with truncated-through-sentence BPTT — forward and
/// backward both run through the batched sequence kernels.
fn train_direction(
    sent: &[usize],
    embed: &mut Matrix,
    cell: &mut LstmCell,
    w_out: &mut Matrix,
    lr: f32,
    reverse: bool,
) {
    let seq: Vec<usize> = if reverse {
        sent.iter().rev().cloned().collect()
    } else {
        sent.to_vec()
    };
    let t_len = seq.len() - 1;
    let (hs, _, cache) = cell.forward_seq_cached(
        &LstmState::zeros(cell.hidden),
        gather_rows(&seq[..t_len], embed),
    );
    // Output losses and per-step gradients into h.
    let mut d_hs = Matrix::zeros(t_len, cell.hidden);
    let inv = 1.0 / t_len as f32;
    for t in 0..t_len {
        let h = hs.row(t);
        let target = seq[t + 1];
        let logits = w_out.matvec(h);
        let p = softmax(&logits);
        let mut dlogits = p;
        dlogits[target] -= 1.0;
        for d in dlogits.iter_mut() {
            *d *= inv;
        }
        d_hs.row_mut(t).copy_from_slice(&w_out.matvec_t(&dlogits));
        w_out.add_outer_scaled(&dlogits, h, -lr);
    }
    // BPTT over the whole sequence, weight gradients batched.
    let mut grads = LstmGrads::zeros(cell);
    let (dxs, _, _) = cell.backward_seq(&cache, &d_hs, &vec![0.0; cell.hidden], &mut grads);
    cell.apply_gradients(&grads, lr);
    for (t, &tok) in seq[..t_len].iter().enumerate() {
        let row = embed.row_mut(tok);
        for (p, g) in row.iter_mut().zip(dxs.row(t)) {
            *p -= lr * g;
        }
    }
}

/// Small helper: `A += dy ⊗ x * scale` (used for the LM head update).
trait OuterScaled {
    fn add_outer_scaled(&mut self, dy: &[f32], x: &[f32], scale: f32);
}

impl OuterScaled for Matrix {
    fn add_outer_scaled(&mut self, dy: &[f32], x: &[f32], scale: f32) {
        for (r, &dyv) in dy.iter().enumerate() {
            let dyr = dyv * scale;
            if dyr != 0.0 {
                let row = self.row_mut(r);
                for (c, xv) in x.iter().enumerate() {
                    row[c] += dyr * xv;
                }
            }
        }
    }
}

/// BERT-style masked-token encoder (one self-attention layer).
#[derive(Debug, Clone)]
pub struct BertStyleEncoder {
    /// Output dimensionality.
    pub dim: usize,
    /// Fraction of positions masked per pass.
    pub mask_fraction: f64,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Maximum positions with learned position vectors.
    pub max_len: usize,
}

impl Default for BertStyleEncoder {
    fn default() -> Self {
        BertStyleEncoder {
            dim: 32,
            mask_fraction: 0.15,
            epochs: 4,
            learning_rate: 0.08,
            max_len: 40,
        }
    }
}

impl Embedder for BertStyleEncoder {
    fn name(&self) -> &'static str {
        "BERT"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn train(&self, corpus: &Corpus, seed: u64) -> Embedding {
        let vocab = Vocab::from_corpus(&corpus.sentences, 1);
        let v = vocab.len();
        let d = self.dim;
        let mut rng = seeded_rng(seed);
        let mut embed = Matrix::uniform(v, d, 0.1, &mut rng);
        let mut pos = Matrix::uniform(self.max_len, d, 0.1, &mut rng);
        let mut mask_vec: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.1..=0.1)).collect();
        let mut attention = AdditiveAttention::new(d, d, 0.1, &mut rng);
        let mut w_out = Matrix::uniform(v, d, 0.1, &mut rng);

        let ids: Vec<Vec<usize>> = corpus
            .sentences
            .iter()
            .map(|s| s.iter().map(|t| vocab.id(t)).take(self.max_len).collect())
            .collect();

        for _ in 0..self.epochs {
            for sent in &ids {
                if sent.len() < 3 {
                    continue;
                }
                // Mask one or more positions.
                let n_masks = ((sent.len() as f64 * self.mask_fraction).ceil() as usize).max(1);
                for _ in 0..n_masks {
                    let mi = rng.gen_range(0..sent.len());
                    let target = sent[mi];
                    // Context states: token+position vectors of the
                    // unmasked positions, as key-matrix rows.
                    let mut keys = Matrix::zeros(sent.len() - 1, d);
                    let mut key_pos: Vec<(usize, usize)> = Vec::new(); // (token, pos)
                    for (j, &tok) in sent.iter().enumerate() {
                        if j == mi {
                            continue;
                        }
                        let row = keys.row_mut(key_pos.len());
                        row.copy_from_slice(embed.row(tok));
                        for (a, b) in row.iter_mut().zip(pos.row(j)) {
                            *a += b;
                        }
                        key_pos.push((tok, j));
                    }
                    // Query: mask vector + position.
                    let mut query = mask_vec.clone();
                    for (a, b) in query.iter_mut().zip(pos.row(mi)) {
                        *a += b;
                    }
                    let proj = attention.project(&keys);
                    let (context, cache) = attention.forward(&query, &keys, &proj);
                    // Prediction head over (context + query).
                    let mut feat = context.clone();
                    for (a, b) in feat.iter_mut().zip(&query) {
                        *a += b;
                    }
                    let logits = w_out.matvec(&feat);
                    let p = softmax(&logits);
                    let mut dlogits = p;
                    dlogits[target] -= 1.0;
                    let dfeat = w_out.matvec_t(&dlogits);
                    w_out.add_outer_scaled(&dlogits, &feat, -self.learning_rate);
                    // dfeat flows to both context and query.
                    let mut attn_grads = AttnGrads::zeros(&attention);
                    let mut dkeys = Matrix::zeros(keys.rows, keys.cols);
                    let dq_attn = attention.backward(
                        &cache,
                        &query,
                        &keys,
                        &dfeat,
                        &mut attn_grads,
                        &mut dkeys,
                    );
                    attention.apply_gradients(&attn_grads, self.learning_rate);
                    let lr = self.learning_rate;
                    // Query gradient: from attention and directly from feat.
                    for k in 0..d {
                        let g = dq_attn[k] + dfeat[k];
                        mask_vec[k] -= lr * g;
                        let pr = pos.row_mut(mi);
                        pr[k] -= lr * g;
                    }
                    for (idx, (tok, j)) in key_pos.iter().enumerate() {
                        let dk = dkeys.row(idx);
                        let er = embed.row_mut(*tok);
                        for (k, g) in dk.iter().enumerate() {
                            er[k] -= lr * g;
                        }
                        let pr = pos.row_mut(*j);
                        for (k, g) in dk.iter().enumerate() {
                            pr[k] -= lr * g;
                        }
                    }
                }
            }
        }

        // Distill: per-type mean contextual vector (context + token
        // embedding at each occurrence).
        let mut table = Matrix::zeros(v, d);
        let mut counts = vec![0usize; v];
        for sent in &ids {
            if sent.len() < 2 {
                continue;
            }
            for (i, &tok) in sent.iter().enumerate() {
                let mut keys = Matrix::zeros(sent.len() - 1, d);
                let mut next = 0;
                for (j, &other) in sent.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let row = keys.row_mut(next);
                    row.copy_from_slice(embed.row(other));
                    for (a, b) in row.iter_mut().zip(pos.row(j)) {
                        *a += b;
                    }
                    next += 1;
                }
                let mut query = embed.row(tok).to_vec();
                for (a, b) in query.iter_mut().zip(pos.row(i)) {
                    *a += b;
                }
                let proj = attention.project(&keys);
                let (context, _) = attention.forward(&query, &keys, &proj);
                let row = table.row_mut(tok);
                for k in 0..d {
                    row[k] += context[k] + embed.get(tok, k);
                }
                counts[tok] += 1;
            }
        }
        for (tok, &c) in counts.iter().enumerate() {
            if c > 0 {
                for val in table.row_mut(tok) {
                    *val /= c as f32;
                }
            }
        }
        Embedding {
            vocab,
            dim: d,
            table,
            kind: EmbedderKind::Bert,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured_corpus() -> Corpus {
        let mut sentences = Vec::new();
        for _ in 0..12 {
            for color in ["red", "blue"] {
                sentences.push(format!("the {color} car drives along the quiet road"));
                sentences.push(format!("a {color} ball bounces in the garden today"));
            }
            sentences.push("seven plus three equals ten exactly right".to_string());
        }
        Corpus::from_sentences(&sentences)
    }

    #[test]
    fn elmo_produces_full_table() {
        let e = ElmoStyleBiLm {
            epochs: 1,
            ..Default::default()
        }
        .train(&structured_corpus(), 1);
        assert_eq!(e.dim, 32);
        assert_eq!(e.table.rows, e.vocab.len());
        // Seen tokens have nonzero vectors.
        assert!(e.vector("red").iter().any(|v| *v != 0.0));
    }

    #[test]
    fn elmo_contexts_cluster() {
        let e = ElmoStyleBiLm {
            epochs: 3,
            ..Default::default()
        }
        .train(&structured_corpus(), 3);
        assert!(e.cosine("red", "blue") > e.cosine("red", "seven"));
    }

    #[test]
    fn bert_produces_full_table() {
        let e = BertStyleEncoder {
            epochs: 1,
            ..Default::default()
        }
        .train(&structured_corpus(), 1);
        assert_eq!(e.table.rows, e.vocab.len());
        assert!(e.vector("car").iter().any(|v| *v != 0.0));
    }

    #[test]
    fn bert_contexts_cluster() {
        let e = BertStyleEncoder {
            epochs: 4,
            ..Default::default()
        }
        .train(&structured_corpus(), 5);
        assert!(e.cosine("red", "blue") > e.cosine("red", "seven"));
    }

    #[test]
    fn both_are_deterministic() {
        let c = structured_corpus();
        let e1 = ElmoStyleBiLm {
            epochs: 1,
            ..Default::default()
        }
        .train(&c, 2);
        let e2 = ElmoStyleBiLm {
            epochs: 1,
            ..Default::default()
        }
        .train(&c, 2);
        assert_eq!(e1.table.data, e2.table.data);
        let b1 = BertStyleEncoder {
            epochs: 1,
            ..Default::default()
        }
        .train(&c, 2);
        let b2 = BertStyleEncoder {
            epochs: 1,
            ..Default::default()
        }
        .train(&c, 2);
        assert_eq!(b1.table.data, b2.table.data);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn elmo_rejects_odd_dim() {
        ElmoStyleBiLm {
            dim: 33,
            ..Default::default()
        }
        .train(&structured_corpus(), 1);
    }
}
