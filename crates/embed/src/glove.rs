//! GloVe (Pennington et al. \[44\]): weighted least squares on the log
//! co-occurrence matrix, optimized with AdaGrad — from scratch.

use crate::corpus::Corpus;
use crate::embedder::{Embedder, EmbedderKind, Embedding};
use lantern_nn::matrix::{seeded_rng, Matrix};
use lantern_text::Vocab;
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// GloVe trainer.
#[derive(Debug, Clone)]
pub struct GloveTrainer {
    /// Vector dimensionality.
    pub dim: usize,
    /// Co-occurrence window radius (distance-weighted `1/d`).
    pub window: usize,
    /// Epochs over the co-occurrence pairs.
    pub epochs: usize,
    /// AdaGrad initial learning rate.
    pub learning_rate: f32,
    /// Weighting cap `x_max`.
    pub x_max: f32,
    /// Weighting exponent `α`.
    pub alpha: f32,
}

impl Default for GloveTrainer {
    fn default() -> Self {
        GloveTrainer {
            dim: 32,
            window: 3,
            epochs: 20,
            learning_rate: 0.05,
            x_max: 50.0,
            alpha: 0.75,
        }
    }
}

impl Embedder for GloveTrainer {
    fn name(&self) -> &'static str {
        "GloVe"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn train(&self, corpus: &Corpus, seed: u64) -> Embedding {
        let vocab = Vocab::from_corpus(&corpus.sentences, 1);
        let v = vocab.len();
        // Distance-weighted co-occurrence counts.
        let mut cooc: HashMap<(usize, usize), f32> = HashMap::new();
        for sent in &corpus.sentences {
            let ids: Vec<usize> = sent.iter().map(|t| vocab.id(t)).collect();
            for (i, &wi) in ids.iter().enumerate() {
                if wi <= 3 {
                    continue;
                }
                for d in 1..=self.window {
                    if i + d >= ids.len() {
                        break;
                    }
                    let wj = ids[i + d];
                    if wj <= 3 {
                        continue;
                    }
                    let inc = 1.0 / d as f32;
                    *cooc.entry((wi, wj)).or_insert(0.0) += inc;
                    *cooc.entry((wj, wi)).or_insert(0.0) += inc;
                }
            }
        }
        let mut pairs: Vec<((usize, usize), f32)> = cooc.into_iter().collect();
        pairs.sort_by_key(|((a, b), _)| (*a, *b)); // determinism

        let mut rng = seeded_rng(seed);
        let mut w = Matrix::uniform(v, self.dim, 0.5 / self.dim as f32, &mut rng);
        let mut w_tilde = Matrix::uniform(v, self.dim, 0.5 / self.dim as f32, &mut rng);
        let mut b = vec![0.0f32; v];
        let mut b_tilde = vec![0.0f32; v];
        // AdaGrad accumulators.
        let mut gw = Matrix::zeros(v, self.dim);
        let mut gw_tilde = Matrix::zeros(v, self.dim);
        let mut gb = vec![1e-8f32; v];
        let mut gb_tilde = vec![1e-8f32; v];
        gw.data.iter_mut().for_each(|x| *x = 1e-8);
        gw_tilde.data.iter_mut().for_each(|x| *x = 1e-8);

        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &pi in &order {
                let ((i, j), x) = pairs[pi];
                let weight = if x < self.x_max {
                    (x / self.x_max).powf(self.alpha)
                } else {
                    1.0
                };
                let dot: f32 = w
                    .row(i)
                    .iter()
                    .zip(w_tilde.row(j))
                    .map(|(a, c)| a * c)
                    .sum();
                let diff = dot + b[i] + b_tilde[j] - x.ln();
                let fdiff = weight * diff;
                // AdaGrad updates.
                for d in 0..self.dim {
                    let gi = fdiff * w_tilde.get(j, d);
                    let gj = fdiff * w.get(i, d);
                    let acc_i = gw.get(i, d) + gi * gi;
                    gw.set(i, d, acc_i);
                    let acc_j = gw_tilde.get(j, d) + gj * gj;
                    gw_tilde.set(j, d, acc_j);
                    let wi_new = w.get(i, d) - self.learning_rate * gi / acc_i.sqrt();
                    let wj_new = w_tilde.get(j, d) - self.learning_rate * gj / acc_j.sqrt();
                    w.set(i, d, wi_new);
                    w_tilde.set(j, d, wj_new);
                }
                gb[i] += fdiff * fdiff;
                gb_tilde[j] += fdiff * fdiff;
                b[i] -= self.learning_rate * fdiff / gb[i].sqrt();
                b_tilde[j] -= self.learning_rate * fdiff / gb_tilde[j].sqrt();
            }
        }
        // Final embedding: w + w̃ (standard GloVe practice).
        let mut table = w;
        table.add_scaled(&w_tilde, 1.0);
        Embedding {
            vocab,
            dim: self.dim,
            table,
            kind: EmbedderKind::Glove,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured_corpus() -> Corpus {
        let mut sentences = Vec::new();
        for _ in 0..20 {
            for color in ["red", "blue", "green"] {
                sentences.push(format!("the {color} car drives on the road"));
                sentences.push(format!("a {color} ball bounces in the garden"));
            }
            sentences.push("seven plus three equals ten exactly".to_string());
        }
        Corpus::from_sentences(&sentences)
    }

    #[test]
    fn shared_context_words_are_closer() {
        let e = GloveTrainer::default().train(&structured_corpus(), 11);
        assert!(e.cosine("red", "blue") > e.cosine("red", "seven"));
    }

    #[test]
    fn deterministic() {
        let c = structured_corpus();
        let t = GloveTrainer {
            epochs: 3,
            ..Default::default()
        };
        assert_eq!(t.train(&c, 2).table.data, t.train(&c, 2).table.data);
    }

    #[test]
    fn loss_actually_fits_cooccurrence() {
        // After training, frequently co-occurring pairs should have a
        // larger dot product than never-co-occurring pairs.
        let e = GloveTrainer::default().train(&structured_corpus(), 4);
        let dot = |a: &str, b: &str| -> f32 {
            e.vector(a)
                .iter()
                .zip(e.vector(b))
                .map(|(x, y)| x * y)
                .sum()
        };
        // "car"/"drives" co-occur heavily; "car"/"equals" never.
        assert!(dot("car", "drives") > dot("car", "equals"));
    }

    #[test]
    fn table_shape() {
        let t = GloveTrainer {
            dim: 12,
            epochs: 1,
            ..Default::default()
        };
        let e = t.train(&structured_corpus(), 1);
        assert_eq!(e.table.cols, 12);
        assert_eq!(e.table.rows, e.vocab.len());
    }
}
