//! The shared embedding interface consumed by QEP2Seq's decoder.

use crate::corpus::Corpus;
use lantern_nn::Matrix;
use lantern_text::Vocab;

/// Which embedding family produced a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedderKind {
    /// Skip-gram with negative sampling.
    Word2Vec,
    /// Global co-occurrence least squares.
    Glove,
    /// ELMo-style bidirectional LSTM language model (distilled to
    /// per-type vectors).
    Elmo,
    /// BERT-style masked-token self-attention encoder (distilled to
    /// per-type vectors).
    Bert,
}

/// A trained embedding: vocabulary plus one vector per token.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The vocabulary the table is indexed by.
    pub vocab: Vocab,
    /// Vector dimensionality.
    pub dim: usize,
    /// `vocab.len() x dim` table.
    pub table: Matrix,
    /// Producing family.
    pub kind: EmbedderKind,
}

impl Embedding {
    /// Vector for `token` (the `<UNK>` row when absent).
    pub fn vector(&self, token: &str) -> &[f32] {
        self.table.row(self.vocab.id(token))
    }

    /// Cosine similarity between two tokens' vectors.
    pub fn cosine(&self, a: &str, b: &str) -> f32 {
        let va = self.vector(a);
        let vb = self.vector(b);
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// `k` nearest neighbours of `token` by cosine similarity.
    pub fn nearest(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let mut sims: Vec<(String, f32)> = self
            .vocab
            .iter()
            .filter(|(id, t)| *id > 3 && *t != token)
            .map(|(_, t)| (t.to_string(), self.cosine(token, t)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        sims.truncate(k);
        sims
    }

    /// Re-index the table onto `target` vocabulary (rows for tokens the
    /// embedding never saw get a small deterministic pseudo-random
    /// vector, so no two unknown tokens collide exactly). This is what
    /// QEP2Seq installs as its frozen decoder embedding.
    pub fn aligned_table(&self, target: &Vocab) -> Matrix {
        let mut out = Matrix::zeros(target.len(), self.dim);
        for (id, token) in target.iter() {
            let row = out.row_mut(id);
            if self.vocab.contains(token) {
                row.copy_from_slice(self.table.row(self.vocab.id(token)));
            } else {
                // Deterministic tiny values from a token hash.
                let mut h: u64 = 0xcbf29ce484222325;
                for b in token.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                for (j, v) in row.iter_mut().enumerate() {
                    let x = h
                        .wrapping_mul(j as u64 + 1)
                        .wrapping_add(j as u64 * 0x9e3779b9);
                    *v = ((x % 2000) as f32 / 1000.0 - 1.0) * 0.01;
                }
            }
        }
        out
    }
}

/// A trainable embedder.
pub trait Embedder {
    /// Family name (report labels).
    fn name(&self) -> &'static str;

    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Train on `corpus` deterministically from `seed`.
    fn train(&self, corpus: &Corpus, seed: u64) -> Embedding;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_nn::matrix::seeded_rng;

    fn toy_embedding() -> Embedding {
        let mut vocab = Vocab::new();
        for t in ["cat", "dog", "car"] {
            vocab.add(t);
        }
        let mut table = Matrix::uniform(vocab.len(), 4, 0.5, &mut seeded_rng(1));
        // cat == dog direction, car orthogonal-ish.
        table.row_mut(4).copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        table.row_mut(5).copy_from_slice(&[0.9, 0.1, 0.0, 0.0]);
        table.row_mut(6).copy_from_slice(&[0.0, 0.0, 1.0, 0.0]);
        Embedding {
            vocab,
            dim: 4,
            table,
            kind: EmbedderKind::Word2Vec,
        }
    }

    #[test]
    fn cosine_reflects_geometry() {
        let e = toy_embedding();
        assert!(e.cosine("cat", "dog") > 0.95);
        assert!(e.cosine("cat", "car") < 0.1);
        assert!((e.cosine("cat", "cat") - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nearest_neighbour_order() {
        let e = toy_embedding();
        let nn = e.nearest("cat", 2);
        assert_eq!(nn[0].0, "dog");
    }

    #[test]
    fn aligned_table_copies_known_rows() {
        let e = toy_embedding();
        let mut target = Vocab::new();
        target.add("dog");
        target.add("zebra");
        let t = e.aligned_table(&target);
        assert_eq!(t.rows, target.len());
        assert_eq!(t.row(4), e.vector("dog"));
        // Unknown token gets small nonzero deterministic values.
        let zebra = t.row(5);
        assert!(zebra.iter().any(|v| *v != 0.0));
        assert!(zebra.iter().all(|v| v.abs() <= 0.011));
        let t2 = e.aligned_table(&target);
        assert_eq!(t.data, t2.data);
    }

    #[test]
    fn unknown_token_maps_to_unk_row() {
        let e = toy_embedding();
        assert_eq!(e.vector("never-seen"), e.table.row(3));
    }
}
