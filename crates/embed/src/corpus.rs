//! Corpora for embedding training.
//!
//! The paper contrasts vectors *pre-trained on a large general corpus*
//! (Wikipedia-scale, for Word2Vec/GloVe/BERT/ELMo) against vectors
//! *self-trained* on the narrow RULE-LANTERN output. Offline we cannot
//! ship Wikipedia, so the "pre-trained" condition uses a built-in
//! generic-English corpus that (a) is an order of magnitude larger than
//! the task corpus, (b) covers the content words LANTERN emits in
//! ordinary, non-database contexts, and (c) contains plenty of
//! unrelated vocabulary — reproducing the breadth-vs-narrowness
//! contrast the experiment actually manipulates.

use lantern_text::tokenize;

/// A tokenized training corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Tokenized sentences (lowercased).
    pub sentences: Vec<Vec<String>>,
}

impl Corpus {
    /// Build from raw sentences (tokenizes and lowercases).
    pub fn from_sentences<S: AsRef<str>>(sentences: &[S]) -> Self {
        Corpus {
            sentences: sentences
                .iter()
                .map(|s| {
                    tokenize(&s.as_ref().to_lowercase())
                        .into_iter()
                        .filter(|t| t.chars().any(|c| c.is_alphanumeric()) || t.starts_with('<'))
                        .collect()
                })
                .collect(),
        }
    }

    /// Total token count.
    pub fn token_count(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }

    /// Merge two corpora.
    pub fn extend(&mut self, other: &Corpus) {
        self.sentences.extend(other.sentences.iter().cloned());
    }
}

/// Sentence templates expanded into the built-in general-English
/// corpus. Each `{N}`/`{V}`/`{A}`/`{P}` slot is filled with every
/// member of the corresponding word class, giving several thousand
/// grammatical sentences covering LANTERN's content words in ordinary
/// usage plus broad unrelated vocabulary.
const TEMPLATES: &[&str] = &[
    "the {A} {N} will {V} the {N} before the {N} arrives",
    "we {V} a {A} {N} and then {V} another {N}",
    "to {V} the {N} you must first {V} the {A} {N}",
    "a {N} can {V} any {N} that contains a {A} {N}",
    "they {V} the {N} on the {N} and get the {A} results",
    "each {N} should {V} its {N} to produce a {A} {N}",
    "please {V} the {N} using the {A} {N} from the {N}",
    "after you {V} the {N} the {A} {N} appears",
    "students {V} the {A} {N} to understand the {N}",
    "the {N} and the {N} {V} a {A} {N} together",
];

const NOUNS: &[&str] = &[
    "table",
    "index",
    "row",
    "record",
    "result",
    "condition",
    "relation",
    "attribute",
    "value",
    "order",
    "group",
    "filter",
    "scan",
    "join",
    "hash",
    "sort",
    "list",
    "plan",
    "step",
    "query",
    "book",
    "river",
    "garden",
    "window",
    "teacher",
    "student",
    "engine",
    "lantern",
    "machine",
    "city",
    "market",
    "bridge",
    "letter",
    "number",
    "output",
    "input",
    "removal",
    "duplicate",
    "worker",
    "partition",
];

const VERBS: &[&str] = &[
    "perform",
    "execute",
    "scan",
    "join",
    "sort",
    "hash",
    "filter",
    "group",
    "select",
    "remove",
    "keep",
    "read",
    "write",
    "build",
    "compute",
    "combine",
    "merge",
    "produce",
    "obtain",
    "get",
    "find",
    "carry",
    "apply",
    "gather",
    "materialize",
    "separate",
    "arrange",
    "check",
];

const ADJECTIVES: &[&str] = &[
    "final",
    "intermediate",
    "sequential",
    "parallel",
    "large",
    "small",
    "sorted",
    "hashed",
    "matching",
    "duplicate",
    "unique",
    "conclusive",
    "quick",
    "careful",
    "ordered",
    "grouped",
    "relevant",
    "temporary",
    "nested",
    "outer",
    "inner",
];

/// The built-in general-English corpus (the "pre-trained" condition).
pub fn builtin_english_corpus() -> Corpus {
    let mut sentences = Vec::new();
    // Deterministic template expansion: rotate word lists at coprime
    // strides so slots vary independently.
    let mut n_i = 0usize;
    let mut v_i = 0usize;
    let mut a_i = 0usize;
    for round in 0..40 {
        for template in TEMPLATES {
            let mut s = String::new();
            for part in template.split(' ') {
                if !s.is_empty() {
                    s.push(' ');
                }
                match part {
                    "{N}" => {
                        s.push_str(NOUNS[n_i % NOUNS.len()]);
                        n_i += 7;
                    }
                    "{V}" => {
                        s.push_str(VERBS[v_i % VERBS.len()]);
                        v_i += 5;
                    }
                    "{A}" => {
                        s.push_str(ADJECTIVES[a_i % ADJECTIVES.len()]);
                        a_i += 2; // coprime with the 21 adjectives
                    }
                    w => s.push_str(w),
                }
            }
            sentences.push(s);
            n_i += round; // vary phase between rounds
        }
    }
    Corpus::from_sentences(&sentences)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_corpus_is_substantial() {
        let c = builtin_english_corpus();
        assert!(c.sentences.len() >= 400, "{}", c.sentences.len());
        assert!(c.token_count() >= 4000, "{}", c.token_count());
    }

    #[test]
    fn builtin_corpus_covers_lantern_content_words() {
        let c = builtin_english_corpus();
        let all: std::collections::HashSet<&str> = c
            .sentences
            .iter()
            .flat_map(|s| s.iter().map(String::as_str))
            .collect();
        for w in [
            "perform",
            "hash",
            "join",
            "scan",
            "sort",
            "filter",
            "intermediate",
            "final",
        ] {
            assert!(all.contains(w), "missing {w}");
        }
    }

    #[test]
    fn from_sentences_lowercases_and_tokenizes() {
        let c = Corpus::from_sentences(&["Perform Hash JOIN on T1."]);
        assert_eq!(c.sentences[0], vec!["perform", "hash", "join", "on", "t1"]);
    }

    #[test]
    fn deterministic() {
        let a = builtin_english_corpus();
        let b = builtin_english_corpus();
        assert_eq!(a.sentences, b.sentences);
    }

    #[test]
    fn extend_merges() {
        let mut a = Corpus::from_sentences(&["one two"]);
        let b = Corpus::from_sentences(&["three four"]);
        a.extend(&b);
        assert_eq!(a.sentences.len(), 2);
    }
}
