//! # lantern-embed
//!
//! Word-embedding trainers standing in for the paper's pre-trained
//! vectors (Word2Vec, GloVe, ELMo, BERT — refs \[1,2,3,13\]).
//!
//! Offline reproduction cannot download the published model files, so
//! this crate implements each family from scratch and trains them on
//! either (a) a built-in generic-English corpus (the "pre-trained"
//! condition) or (b) the RULE-LANTERN output corpus (the paper's
//! "self-trained" condition):
//!
//! * [`word2vec`] — skip-gram with negative sampling,
//! * [`glove`] — weighted least squares on the co-occurrence matrix
//!   with AdaGrad,
//! * [`contextual`] — an ELMo-style bidirectional LSTM language model
//!   and a BERT-style self-attention masked-token encoder; both emit
//!   per-token *contextual* vectors.
//!
//! All trainers implement the [`Embedder`] trait consumed by
//! `lantern-neural`'s QEP2Seq decoder.

pub mod contextual;
pub mod corpus;
pub mod embedder;
pub mod glove;
pub mod word2vec;

pub use contextual::{BertStyleEncoder, ElmoStyleBiLm};
pub use corpus::{builtin_english_corpus, Corpus};
pub use embedder::{Embedder, EmbedderKind, Embedding};
pub use glove::GloveTrainer;
pub use word2vec::Word2VecTrainer;
