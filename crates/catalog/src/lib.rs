//! # lantern-catalog
//!
//! Schema and data substrate for the LANTERN reproduction.
//!
//! The paper evaluates on TPC-H, SDSS, IMDB, and DBLP. We cannot ship
//! those datasets, so this crate provides:
//!
//! * a relational schema model with foreign-key relationships
//!   ([`Catalog`], [`Table`], [`Column`]),
//! * faithful schema definitions for the four benchmark domains
//!   ([`tpch_catalog`], [`sdss_catalog`], [`imdb_catalog`],
//!   [`dblp_catalog`]),
//! * a deterministic synthetic data generator ([`datagen`]) producing
//!   value distributions (skew, correlated FK fan-out, low-cardinality
//!   categorical columns) that drive realistic plan choices, and
//! * per-column statistics ([`stats`]) consumed by the cost-based
//!   planner in `lantern-engine`.
//!
//! # Example
//!
//! ```
//! use lantern_catalog::{datagen, tpch_catalog};
//!
//! let catalog = tpch_catalog();
//! let orders = catalog.table("orders").expect("TPC-H has orders");
//! assert!(orders.column("o_orderstatus").is_some());
//!
//! // Deterministic synthetic data at a chosen scale (same seed, same
//! // rows — everywhere, every run):
//! let data = datagen::generate_table(&catalog, orders, 0.001, 42);
//! let again = datagen::generate_table(&catalog, orders, 0.001, 42);
//! assert!(!data.columns.is_empty());
//! assert_eq!(data.columns, again.columns);
//! ```

pub mod datagen;
pub mod schema;
pub mod schemas;
pub mod stats;
pub mod value;

pub use datagen::TableData;
pub use schema::{Catalog, Column, ColumnType, ForeignKey, Table};
pub use schemas::{dblp_catalog, imdb_catalog, sdss_catalog, tpch_catalog};
pub use stats::{ColumnStats, TableStats};
pub use value::Value;
