//! The four benchmark schemas the paper evaluates on.
//!
//! Column names, key relationships, and cardinality ratios follow the
//! published benchmark definitions (TPC-H v2.17; SDSS SkyServer's
//! PhotoObj/SpecObj core; the relational IMDB dump; the DBLP schema of
//! the paper's running Example 3.1). Row counts are the benchmark base
//! cardinalities, scaled down by the data generator's scale factor.

use crate::schema::{Catalog, Column, ColumnType, Distribution, Table};

use ColumnType as T;
use Distribution as D;

const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const ORDER_STATUS: &[&str] = &["F", "O", "P"];
const ORDER_PRIO: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: &[&str] = &["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const LINE_STATUS: &[&str] = &["F", "O"];
const RETURN_FLAGS: &[&str] = &["A", "N", "R"];
const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "CHINA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "ROMANIA",
    "RUSSIA",
    "SAUDI ARABIA",
    "UNITED KINGDOM",
    "UNITED STATES",
    "VIETNAM",
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const BRANDS: &[&str] = &[
    "Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45", "Brand#55",
];
const CONTAINERS: &[&str] = &[
    "JUMBO PKG",
    "LG CASE",
    "MED BOX",
    "SM BOX",
    "SM PACK",
    "WRAP BAG",
];
const PART_TYPES: &[&str] = &[
    "ECONOMY ANODIZED STEEL",
    "LARGE BRUSHED BRASS",
    "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL",
    "SMALL PLATED TIN",
    "STANDARD POLISHED BRASS",
];

/// The TPC-H schema (8 tables) with base cardinalities at SF 1.
pub fn tpch_catalog() -> Catalog {
    let mut c = Catalog::new("tpch");
    c.add_table(Table {
        name: "region".into(),
        columns: vec![
            Column::new("r_regionkey", T::Int, D::Serial).indexed(),
            Column::new("r_name", T::Text, D::Categorical(REGIONS)),
            Column::new("r_comment", T::Text, D::Words(6)),
        ],
        base_rows: 5,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "nation".into(),
        columns: vec![
            Column::new("n_nationkey", T::Int, D::Serial).indexed(),
            Column::new("n_name", T::Text, D::Categorical(NATIONS)),
            Column::new("n_regionkey", T::Int, D::ForeignKey),
            Column::new("n_comment", T::Text, D::Words(6)),
        ],
        base_rows: 25,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "supplier".into(),
        columns: vec![
            Column::new("s_suppkey", T::Int, D::Serial).indexed(),
            Column::new("s_name", T::Text, D::Words(2)),
            Column::new("s_address", T::Text, D::Words(3)),
            Column::new("s_nationkey", T::Int, D::ForeignKey),
            Column::new("s_phone", T::Text, D::Words(1)),
            Column::new("s_acctbal", T::Float, D::UniformFloat(-999.99, 9999.99)),
            Column::new("s_comment", T::Text, D::Words(8)),
        ],
        base_rows: 10_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "part".into(),
        columns: vec![
            Column::new("p_partkey", T::Int, D::Serial).indexed(),
            Column::new("p_name", T::Text, D::Words(4)),
            Column::new("p_mfgr", T::Text, D::Categorical(BRANDS)),
            Column::new("p_brand", T::Text, D::Categorical(BRANDS)).indexed(),
            Column::new("p_type", T::Text, D::Categorical(PART_TYPES)),
            Column::new("p_size", T::Int, D::UniformInt(1, 50)),
            Column::new("p_container", T::Text, D::Categorical(CONTAINERS)),
            Column::new("p_retailprice", T::Float, D::UniformFloat(900.0, 2100.0)),
            Column::new("p_comment", T::Text, D::Words(5)),
        ],
        base_rows: 200_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "partsupp".into(),
        columns: vec![
            Column::new("ps_partkey", T::Int, D::ForeignKey).indexed(),
            Column::new("ps_suppkey", T::Int, D::ForeignKey),
            Column::new("ps_availqty", T::Int, D::UniformInt(1, 9999)),
            Column::new("ps_supplycost", T::Float, D::UniformFloat(1.0, 1000.0)),
            Column::new("ps_comment", T::Text, D::Words(10)),
        ],
        base_rows: 800_000,
        primary_key: None,
    });
    c.add_table(Table {
        name: "customer".into(),
        columns: vec![
            Column::new("c_custkey", T::Int, D::Serial).indexed(),
            Column::new("c_name", T::Text, D::Words(2)),
            Column::new("c_address", T::Text, D::Words(3)),
            Column::new("c_nationkey", T::Int, D::ForeignKey),
            Column::new("c_phone", T::Text, D::Words(1)),
            Column::new("c_acctbal", T::Float, D::UniformFloat(-999.99, 9999.99)),
            Column::new("c_mktsegment", T::Text, D::Categorical(SEGMENTS)).indexed(),
            Column::new("c_comment", T::Text, D::Words(8)),
        ],
        base_rows: 150_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "orders".into(),
        columns: vec![
            Column::new("o_orderkey", T::Int, D::Serial).indexed(),
            Column::new("o_custkey", T::Int, D::ForeignKey).indexed(),
            Column::new("o_orderstatus", T::Text, D::Categorical(ORDER_STATUS)),
            Column::new("o_totalprice", T::Float, D::UniformFloat(850.0, 560000.0)),
            Column::new("o_orderdate", T::Date, D::DateRange(0, 2400)).indexed(),
            Column::new("o_orderpriority", T::Text, D::Categorical(ORDER_PRIO)),
            Column::new("o_clerk", T::Text, D::Words(1)),
            Column::new("o_shippriority", T::Int, D::UniformInt(0, 0)),
            Column::new("o_comment", T::Text, D::Words(8)),
        ],
        base_rows: 1_500_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "lineitem".into(),
        columns: vec![
            Column::new("l_orderkey", T::Int, D::ForeignKey).indexed(),
            Column::new("l_partkey", T::Int, D::ForeignKey),
            Column::new("l_suppkey", T::Int, D::ForeignKey),
            Column::new("l_linenumber", T::Int, D::UniformInt(1, 7)),
            Column::new("l_quantity", T::Int, D::UniformInt(1, 50)),
            Column::new(
                "l_extendedprice",
                T::Float,
                D::UniformFloat(900.0, 105000.0),
            ),
            Column::new("l_discount", T::Float, D::UniformFloat(0.0, 0.1)),
            Column::new("l_tax", T::Float, D::UniformFloat(0.0, 0.08)),
            Column::new("l_returnflag", T::Text, D::Categorical(RETURN_FLAGS)),
            Column::new("l_linestatus", T::Text, D::Categorical(LINE_STATUS)),
            Column::new("l_shipdate", T::Date, D::DateRange(0, 2500)).indexed(),
            Column::new("l_commitdate", T::Date, D::DateRange(0, 2500)),
            Column::new("l_receiptdate", T::Date, D::DateRange(0, 2550)),
            Column::new("l_shipinstruct", T::Text, D::Words(2)),
            Column::new("l_shipmode", T::Text, D::Categorical(SHIP_MODES)),
            Column::new("l_comment", T::Text, D::Words(4)),
        ],
        base_rows: 6_000_000,
        primary_key: None,
    });
    c.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey");
    c.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey");
    c.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey");
    c.add_foreign_key("partsupp", "ps_partkey", "part", "p_partkey");
    c.add_foreign_key("partsupp", "ps_suppkey", "supplier", "s_suppkey");
    c.add_foreign_key("orders", "o_custkey", "customer", "c_custkey");
    c.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey");
    c.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey");
    c.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey");
    c
}

const SDSS_CLASS: &[&str] = &["GALAXY", "QSO", "STAR"];
const SDSS_SURVEY: &[&str] = &["boss", "eboss", "segue1", "segue2", "sdss"];

/// The SDSS SkyServer core schema (photometric + spectroscopic
/// objects), mirroring the DR16 tables the paper's 71 predefined
/// workload queries touch.
pub fn sdss_catalog() -> Catalog {
    let mut c = Catalog::new("sdss");
    c.add_table(Table {
        name: "photoobj".into(),
        columns: vec![
            Column::new("objid", T::Int, D::Serial).indexed(),
            Column::new("ra", T::Float, D::UniformFloat(0.0, 360.0)).indexed(),
            Column::new("dec", T::Float, D::UniformFloat(-90.0, 90.0)),
            Column::new("u", T::Float, D::UniformFloat(12.0, 26.0)),
            Column::new("g", T::Float, D::UniformFloat(12.0, 26.0)),
            Column::new("r", T::Float, D::UniformFloat(12.0, 26.0)).indexed(),
            Column::new("i", T::Float, D::UniformFloat(12.0, 26.0)),
            Column::new("z", T::Float, D::UniformFloat(12.0, 26.0)),
            Column::new("run", T::Int, D::UniformInt(94, 8162)),
            Column::new("camcol", T::Int, D::UniformInt(1, 6)),
            Column::new("field", T::Int, D::UniformInt(11, 988)),
            Column::new("type", T::Int, D::UniformInt(0, 9)),
            Column::new("clean", T::Int, D::UniformInt(0, 1)),
        ],
        base_rows: 2_000_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "specobj".into(),
        columns: vec![
            Column::new("specobjid", T::Int, D::Serial).indexed(),
            Column::new("bestobjid", T::Int, D::ForeignKey).indexed(),
            Column::new("class", T::Text, D::Categorical(SDSS_CLASS)).indexed(),
            Column::new("subclass", T::Text, D::Words(1)).with_nulls(0.3),
            Column::new("survey", T::Text, D::Categorical(SDSS_SURVEY)),
            Column::new("z_redshift", T::Float, D::UniformFloat(-0.01, 7.0)),
            Column::new("zerr", T::Float, D::UniformFloat(0.0, 0.01)),
            Column::new("plate", T::Int, D::UniformInt(266, 12547)),
            Column::new("mjd", T::Int, D::UniformInt(51578, 58543)),
            Column::new("fiberid", T::Int, D::UniformInt(1, 1000)),
        ],
        base_rows: 500_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "galaxy".into(),
        columns: vec![
            Column::new("gal_objid", T::Int, D::ForeignKey).indexed(),
            Column::new("petror90_r", T::Float, D::UniformFloat(0.0, 60.0)),
            Column::new("petromag_r", T::Float, D::UniformFloat(10.0, 25.0)),
            Column::new("expab_r", T::Float, D::UniformFloat(0.05, 1.0)),
        ],
        base_rows: 900_000,
        primary_key: None,
    });
    c.add_table(Table {
        name: "photoz".into(),
        columns: vec![
            Column::new("pz_objid", T::Int, D::ForeignKey).indexed(),
            Column::new("photoz", T::Float, D::UniformFloat(0.0, 1.5)),
            Column::new("photozerr", T::Float, D::UniformFloat(0.0, 0.3)),
        ],
        base_rows: 1_500_000,
        primary_key: None,
    });
    c.add_foreign_key("specobj", "bestobjid", "photoobj", "objid");
    c.add_foreign_key("galaxy", "gal_objid", "photoobj", "objid");
    c.add_foreign_key("photoz", "pz_objid", "photoobj", "objid");
    c
}

const GENRES: &[&str] = &[
    "Action",
    "Adventure",
    "Animation",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Family",
    "Fantasy",
    "Horror",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Thriller",
    "War",
];
const ROLES: &[&str] = &[
    "actor",
    "actress",
    "cinematographer",
    "composer",
    "director",
    "editor",
    "producer",
    "writer",
];

/// The relational IMDB schema (the paper's cross-domain test set:
/// 1000 generated queries -> 5232 acts).
pub fn imdb_catalog() -> Catalog {
    let mut c = Catalog::new("imdb");
    c.add_table(Table {
        name: "movies".into(),
        columns: vec![
            Column::new("movie_id", T::Int, D::Serial).indexed(),
            Column::new("title", T::Text, D::Words(3)),
            Column::new("year", T::Int, D::UniformInt(1930, 2021)).indexed(),
            Column::new("rank_score", T::Float, D::UniformFloat(1.0, 10.0)).with_nulls(0.2),
        ],
        base_rows: 390_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "actors".into(),
        columns: vec![
            Column::new("actor_id", T::Int, D::Serial).indexed(),
            Column::new("first_name", T::Text, D::Words(1)),
            Column::new("last_name", T::Text, D::Words(1)),
            Column::new("gender", T::Text, D::Categorical(&["F", "M"])),
        ],
        base_rows: 820_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "roles".into(),
        columns: vec![
            Column::new("role_actor_id", T::Int, D::ForeignKey).indexed(),
            Column::new("role_movie_id", T::Int, D::ForeignKey).indexed(),
            Column::new("role_name", T::Text, D::Categorical(ROLES)),
        ],
        base_rows: 3_400_000,
        primary_key: None,
    });
    c.add_table(Table {
        name: "movies_genres".into(),
        columns: vec![
            Column::new("mg_movie_id", T::Int, D::ForeignKey).indexed(),
            Column::new("genre", T::Text, D::Categorical(GENRES)).indexed(),
        ],
        base_rows: 400_000,
        primary_key: None,
    });
    c.add_table(Table {
        name: "directors".into(),
        columns: vec![
            Column::new("director_id", T::Int, D::Serial).indexed(),
            Column::new("d_first_name", T::Text, D::Words(1)),
            Column::new("d_last_name", T::Text, D::Words(1)),
        ],
        base_rows: 87_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "movies_directors".into(),
        columns: vec![
            Column::new("md_director_id", T::Int, D::ForeignKey).indexed(),
            Column::new("md_movie_id", T::Int, D::ForeignKey).indexed(),
        ],
        base_rows: 370_000,
        primary_key: None,
    });
    c.add_foreign_key("roles", "role_actor_id", "actors", "actor_id");
    c.add_foreign_key("roles", "role_movie_id", "movies", "movie_id");
    c.add_foreign_key("movies_genres", "mg_movie_id", "movies", "movie_id");
    c.add_foreign_key(
        "movies_directors",
        "md_director_id",
        "directors",
        "director_id",
    );
    c.add_foreign_key("movies_directors", "md_movie_id", "movies", "movie_id");
    c
}

/// The DBLP schema of the paper's running Example 3.1 / Example 5.1
/// (`inproceedings` joined with `publication`).
pub fn dblp_catalog() -> Catalog {
    let mut c = Catalog::new("dblp");
    c.add_table(Table {
        name: "publication".into(),
        columns: vec![
            Column::new("pub_key", T::Int, D::Serial).indexed(),
            Column::new("title", T::Text, D::Words(5)),
            Column::new("pub_year", T::Int, D::UniformInt(1970, 2021)),
            Column::new("pages", T::Text, D::Words(1)).with_nulls(0.15),
        ],
        base_rows: 5_000_000,
        primary_key: Some(0),
    });
    c.add_table(Table {
        name: "inproceedings".into(),
        columns: vec![
            Column::new("inproc_id", T::Int, D::Serial).indexed(),
            Column::new("proceeding_key", T::Int, D::ForeignKey).indexed(),
            Column::new("booktitle", T::Text, D::Words(2)),
            Column::new("inproc_year", T::Int, D::UniformInt(1970, 2021)),
        ],
        base_rows: 3_000_000,
        primary_key: Some(0),
    });
    c.add_foreign_key("inproceedings", "proceeding_key", "publication", "pub_key");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_has_eight_tables_and_nine_fks() {
        let c = tpch_catalog();
        assert_eq!(c.tables().len(), 8);
        assert_eq!(c.foreign_keys().len(), 9);
    }

    #[test]
    fn tpch_lineitem_is_largest() {
        let c = tpch_catalog();
        let max = c.tables().iter().max_by_key(|t| t.base_rows).unwrap();
        assert_eq!(max.name, "lineitem");
    }

    #[test]
    fn all_catalogs_have_valid_fk_endpoints() {
        for cat in [
            tpch_catalog(),
            sdss_catalog(),
            imdb_catalog(),
            dblp_catalog(),
        ] {
            for fk in cat.foreign_keys() {
                let t = cat.table(&fk.table).expect("fk child table");
                assert!(t.column(&fk.column).is_some(), "{}.{}", fk.table, fk.column);
                let p = cat.table(&fk.parent_table).expect("fk parent table");
                assert!(p.column(&fk.parent_column).is_some());
            }
        }
    }

    #[test]
    fn dblp_matches_paper_example() {
        let c = dblp_catalog();
        assert!(c
            .table("inproceedings")
            .unwrap()
            .column("proceeding_key")
            .is_some());
        assert!(c.table("publication").unwrap().column("title").is_some());
    }

    #[test]
    fn column_names_are_unique_within_each_catalog() {
        // Unqualified-name resolution requires unambiguous columns.
        for cat in [
            tpch_catalog(),
            sdss_catalog(),
            imdb_catalog(),
            dblp_catalog(),
        ] {
            let mut seen = std::collections::HashSet::new();
            for t in cat.tables() {
                for col in &t.columns {
                    assert!(
                        seen.insert(col.name.clone()),
                        "duplicate column name {} in catalog {}",
                        col.name,
                        cat.name
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_columns_exist_in_every_catalog() {
        for cat in [
            tpch_catalog(),
            sdss_catalog(),
            imdb_catalog(),
            dblp_catalog(),
        ] {
            let any_indexed = cat
                .tables()
                .iter()
                .any(|t| t.columns.iter().any(|c| c.indexed));
            assert!(any_indexed, "catalog {} has no indexes", cat.name);
        }
    }
}
