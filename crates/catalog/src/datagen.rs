//! Deterministic synthetic data generation.
//!
//! Given a [`Catalog`] and a scale factor, produce in-memory tables
//! whose value distributions (uniform, Zipf-skewed FKs, categorical
//! dictionaries, dates, short text) give the cost-based planner real
//! selectivity differences to react to — the property the paper's plan
//! diversity depends on.

use crate::schema::{Catalog, ColumnType, Distribution, Table};
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed wordlist for pseudo-text columns; includes 'July' so the
/// paper's Example 3.1 predicate (`title LIKE '%July%'`) selects rows.
const WORDS: &[&str] = &[
    "analysis", "april", "blue", "careful", "data", "deep", "eastern", "final", "furious",
    "golden", "green", "July", "june", "large", "learning", "march", "model", "northern",
    "october", "pale", "query", "quick", "red", "silent", "silver", "sleepy", "small", "southern",
    "special", "spring", "storage", "summer", "system", "theory", "winter",
];

/// Column-major data for one generated table.
#[derive(Debug, Clone)]
pub struct TableData {
    /// Table name this data belongs to.
    pub name: String,
    /// `columns[i][row]` is the value of column `i` at `row`.
    pub columns: Vec<Vec<Value>>,
    /// Number of rows.
    pub rows: usize,
}

impl TableData {
    /// Row-wise accessor.
    pub fn value(&self, column: usize, row: usize) -> &Value {
        &self.columns[column][row]
    }

    /// Materialize one row as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }
}

/// Generate data for every table in `catalog` at `scale` (fraction of
/// base cardinality, min 1 row), deterministically from `seed`.
///
/// Foreign-key columns are filled with Zipf-skewed references into the
/// parent's serial domain, so joins have realistic skewed fan-out.
pub fn generate(catalog: &Catalog, scale: f64, seed: u64) -> Vec<TableData> {
    catalog
        .tables()
        .iter()
        .map(|t| generate_table(catalog, t, scale, seed))
        .collect()
}

/// Generate a single table's data.
pub fn generate_table(catalog: &Catalog, table: &Table, scale: f64, seed: u64) -> TableData {
    let rows = ((table.base_rows as f64 * scale).round() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ stable_hash(&table.name));
    let mut columns = Vec::with_capacity(table.columns.len());
    for (ci, col) in table.columns.iter().enumerate() {
        let mut data = Vec::with_capacity(rows);
        // FK columns need the parent's row count at the same scale.
        let fk_parent_rows = if matches!(col.distribution, Distribution::ForeignKey) {
            catalog
                .foreign_keys()
                .iter()
                .find(|fk| fk.table == table.name && fk.column == col.name)
                .and_then(|fk| catalog.table(&fk.parent_table))
                .map(|p| ((p.base_rows as f64 * scale).round() as usize).max(1))
                .unwrap_or(rows)
        } else {
            0
        };
        for row in 0..rows {
            if col.null_fraction > 0.0 && rng.gen::<f64>() < col.null_fraction {
                data.push(Value::Null);
                continue;
            }
            let v = match &col.distribution {
                Distribution::Serial => Value::Int(row as i64),
                Distribution::UniformInt(lo, hi) => Value::Int(rng.gen_range(*lo..=*hi)),
                Distribution::ZipfInt(n, s) => Value::Int(zipf(&mut rng, *n, *s) as i64),
                Distribution::UniformFloat(lo, hi) => {
                    Value::Float((rng.gen_range(*lo..*hi) * 100.0).round() / 100.0)
                }
                Distribution::DateRange(lo, hi) => Value::Date(rng.gen_range(*lo..=*hi)),
                Distribution::Categorical(dict) => {
                    Value::Str(dict[rng.gen_range(0..dict.len())].to_string())
                }
                Distribution::Words(n) => {
                    let mut s = String::new();
                    for w in 0..*n {
                        if w > 0 {
                            s.push(' ');
                        }
                        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
                    }
                    Value::Str(s)
                }
                Distribution::ForeignKey => {
                    Value::Int(zipf(&mut rng, fk_parent_rows as u64, 1.1) as i64)
                }
            };
            debug_assert!(type_matches(&v, col.ty), "column {} type mismatch", ci);
            data.push(v);
        }
        columns.push(data);
    }
    TableData {
        name: table.name.clone(),
        columns,
        rows,
    }
}

fn type_matches(v: &Value, ty: ColumnType) -> bool {
    matches!(
        (v, ty),
        (Value::Null, _)
            | (Value::Int(_), ColumnType::Int)
            | (Value::Float(_), ColumnType::Float)
            | (Value::Str(_), ColumnType::Text)
            | (Value::Date(_), ColumnType::Date)
            | (Value::Bool(_), ColumnType::Bool)
    )
}

/// Approximate Zipf sampler over `[0, n)` with exponent `s` using
/// inverse-CDF on the continuous approximation (fast, adequate for
/// workload generation).
fn zipf(rng: &mut StdRng, n: u64, s: f64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    if (s - 1.0).abs() < 1e-9 {
        // H(x) ~ ln(x); invert.
        let h = (n as f64).ln();
        return ((u * h).exp() - 1.0).min(n as f64 - 1.0) as u64;
    }
    let exp = 1.0 - s;
    let h = ((n as f64).powf(exp) - 1.0) / exp;
    let x = (1.0 + u * h * exp).powf(1.0 / exp);
    (x - 1.0).clamp(0.0, n as f64 - 1.0) as u64
}

fn stable_hash(s: &str) -> u64 {
    // FNV-1a, stable across runs/platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemas::{dblp_catalog, tpch_catalog};

    #[test]
    fn deterministic_across_calls() {
        let cat = dblp_catalog();
        let a = generate(&cat, 0.0005, 7);
        let b = generate(&cat, 0.0005, 7);
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.rows, tb.rows);
            assert_eq!(ta.columns, tb.columns);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cat = dblp_catalog();
        let a = generate(&cat, 0.0005, 1);
        let b = generate(&cat, 0.0005, 2);
        // Serial PKs are equal but at least one non-serial column differs.
        let any_diff = a
            .iter()
            .zip(&b)
            .any(|(ta, tb)| ta.columns.iter().zip(&tb.columns).any(|(ca, cb)| ca != cb));
        assert!(any_diff);
    }

    #[test]
    fn scale_controls_row_count() {
        let cat = tpch_catalog();
        let data = generate(&cat, 0.0001, 3);
        let orders = data.iter().find(|t| t.name == "orders").unwrap();
        assert_eq!(orders.rows, 150); // 1.5M * 0.0001
    }

    #[test]
    fn serial_columns_are_sequential() {
        let cat = dblp_catalog();
        let data = generate(&cat, 0.0005, 3);
        let publication = data.iter().find(|t| t.name == "publication").unwrap();
        for (i, v) in publication.columns[0].iter().enumerate() {
            assert_eq!(*v, Value::Int(i as i64));
        }
    }

    #[test]
    fn fk_values_stay_in_parent_domain() {
        let cat = dblp_catalog();
        let data = generate(&cat, 0.0005, 3);
        let publication_rows = data.iter().find(|t| t.name == "publication").unwrap().rows;
        let inproc = data.iter().find(|t| t.name == "inproceedings").unwrap();
        let fk_col = 1; // proceeding_key
        for v in &inproc.columns[fk_col] {
            if let Value::Int(k) = v {
                assert!(
                    *k >= 0 && (*k as usize) < publication_rows,
                    "fk {k} out of range"
                );
            }
        }
    }

    #[test]
    fn null_fraction_respected_roughly() {
        let cat = crate::schemas::imdb_catalog();
        let data = generate(&cat, 0.001, 5);
        let movies = data.iter().find(|t| t.name == "movies").unwrap();
        let rank_col = 3; // rank_score, null_fraction 0.2
        let nulls = movies.columns[rank_col]
            .iter()
            .filter(|v| v.is_null())
            .count();
        let frac = nulls as f64 / movies.rows as f64;
        assert!((0.1..0.3).contains(&frac), "null fraction {frac}");
    }

    #[test]
    fn zipf_is_skewed_toward_small_keys() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let k = zipf(&mut rng, 10, 1.2) as usize;
            counts[k] += 1;
        }
        assert!(counts[0] > counts[9] * 2, "{counts:?}");
    }

    #[test]
    fn wordlist_contains_july_for_example_3_1() {
        assert!(WORDS.contains(&"July"));
    }

    #[test]
    fn min_one_row_even_at_tiny_scale() {
        let cat = tpch_catalog();
        let data = generate(&cat, 1e-9, 1);
        for t in &data {
            assert!(t.rows >= 1);
        }
    }
}
