//! Runtime values flowing through the mini engine's tuples, predicates,
//! and statistics.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value. `Null` sorts before everything and never equals
/// anything under SQL semantics (use [`Value::sql_eq`]); `PartialOrd`
/// implements a total order for sorting and histogram construction.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// Days since 1992-01-01 (the TPC-H epoch); rendered ISO-8601.
    Date(i32),
}

impl Value {
    /// SQL equality: `NULL = x` is never true.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if matches!(self, Value::Null) || matches!(other, Value::Null) {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }

    /// Total comparison across types (numeric types compare by value;
    /// heterogeneous non-numeric comparisons fall back to type rank).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Date(a), Int(b)) => (*a as i64).cmp(b),
            (Int(a), Date(b)) => a.cmp(&(*b as i64)),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Numeric view if this value is numeric (or a date).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render as a SQL literal (strings quoted).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Date(_) => format!("'{}'", self),
            other => other.to_string(),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2,
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

impl PartialEq for Value {
    /// Equality consistent with [`Value::total_cmp`]: `Int(3)` equals
    /// `Float(3.0)`, and `Null` equals `Null` (use [`Value::sql_eq`]
    /// for three-valued SQL semantics).
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => {
                // Days since 1992-01-01, Gregorian.
                let (y, m, day) = date_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

/// Convert days-since-1992-01-01 to (year, month, day).
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let mut remaining = days;
    let mut year = 1992;
    loop {
        let year_len = if is_leap(year) { 366 } else { 365 };
        if remaining >= year_len {
            remaining -= year_len;
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let month_lengths = month_lengths(year);
    for (i, &len) in month_lengths.iter().enumerate() {
        if remaining < len {
            return (year, i as u32 + 1, (remaining + 1) as u32);
        }
        remaining -= len;
    }
    (year, 12, 31)
}

/// Convert (year, month, day) to days-since-1992-01-01.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    let mut days = 0i32;
    if year >= 1992 {
        for y in 1992..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1992 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    let ml = month_lengths(year);
    for m in 1..month {
        days += ml[(m - 1) as usize];
    }
    days + day as i32 - 1
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn month_lengths(y: i32) -> [i32; 12] {
    [
        31,
        if is_leap(y) { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_never_sql_equals() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(1), Value::Null, Value::Int(0)];
        v.sort();
        assert_eq!(v[0], Value::Null);
    }

    #[test]
    fn date_round_trip_epoch() {
        assert_eq!(date_from_days(0), (1992, 1, 1));
        assert_eq!(days_from_date(1992, 1, 1), 0);
    }

    #[test]
    fn date_round_trip_many() {
        for d in [0, 1, 31, 59, 60, 365, 366, 1000, 2500, -1, -365] {
            let (y, m, day) = date_from_days(d);
            assert_eq!(
                days_from_date(y, m, day),
                d,
                "day offset {d} -> {y}-{m}-{day}"
            );
        }
    }

    #[test]
    fn leap_year_february() {
        // 1992 is a leap year: Jan has 31 days, so day 59 is Feb 29.
        assert_eq!(date_from_days(59), (1992, 2, 29));
        assert_eq!(date_from_days(60), (1992, 3, 1));
    }

    #[test]
    fn display_date_is_iso() {
        assert_eq!(Value::Date(0).to_string(), "1992-01-01");
        assert_eq!(Value::Date(366).to_string(), "1993-01-01");
    }

    #[test]
    fn sql_literal_quotes_strings() {
        assert_eq!(Value::Str("BUILDING".into()).to_sql_literal(), "'BUILDING'");
        assert_eq!(Value::Str("O'Brien".into()).to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Int(5).to_sql_literal(), "5");
    }

    #[test]
    fn hash_consistent_for_equal_numerics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        // Float(3.0) hashes the same as Int(3) because both hash their f64 bits.
        assert!(set.contains(&Value::Float(3.0)));
    }
}
