//! Table and column statistics for cost-based planning: row counts,
//! distinct-value counts, min/max, most-common values, and equi-depth
//! histograms — the same inputs a PostgreSQL-style optimizer consumes.

use crate::datagen::TableData;
use crate::value::Value;
use std::collections::HashMap;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub n_distinct: usize,
    /// Fraction of NULL values.
    pub null_fraction: f64,
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Up to `k` most common values with their frequencies (fractions).
    pub most_common: Vec<(Value, f64)>,
    /// Equi-depth histogram bounds (ascending) over non-null values.
    pub histogram: Vec<Value>,
}

impl ColumnStats {
    /// Estimate selectivity of `column = value`.
    pub fn eq_selectivity(&self, value: &Value) -> f64 {
        if value.is_null() {
            return 0.0;
        }
        for (mcv, freq) in &self.most_common {
            if mcv.sql_eq(value) {
                return *freq;
            }
        }
        if self.n_distinct == 0 {
            return 0.0;
        }
        // Residual uniformity assumption over the non-MCV values.
        let mcv_mass: f64 = self.most_common.iter().map(|(_, f)| f).sum();
        let residual_distinct = self
            .n_distinct
            .saturating_sub(self.most_common.len())
            .max(1);
        ((1.0 - self.null_fraction - mcv_mass) / residual_distinct as f64).max(1e-9)
    }

    /// Estimate selectivity of `column < value` (or `<=`, close
    /// enough for costing) from the histogram.
    pub fn lt_selectivity(&self, value: &Value) -> f64 {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return 0.3;
        };
        if value.total_cmp(min).is_le() {
            return 0.0;
        }
        if value.total_cmp(max).is_gt() {
            return 1.0 - self.null_fraction;
        }
        if self.histogram.len() >= 2 {
            // `histogram` holds bucket *bounds*; the fraction below a
            // value is (bounds strictly below - 1) / (bucket count).
            let below = self
                .histogram
                .iter()
                .filter(|b| b.total_cmp(value).is_lt())
                .count();
            let buckets = (self.histogram.len() - 1) as f64;
            return ((below.saturating_sub(1)) as f64 / buckets).clamp(0.0, 1.0);
        }
        // Linear interpolation for numerics without a histogram.
        match (min.as_f64(), max.as_f64(), value.as_f64()) {
            (Some(lo), Some(hi), Some(v)) if hi > lo => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
            _ => 0.3,
        }
    }

    /// Estimate selectivity of `column > value`.
    pub fn gt_selectivity(&self, value: &Value) -> f64 {
        (1.0 - self.null_fraction - self.lt_selectivity(value)).max(0.0)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, in schema column order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute statistics by a full scan of generated data. `mcv_k` and
    /// `histogram_buckets` mirror PostgreSQL's `default_statistics_target`
    /// knobs.
    pub fn analyze(data: &TableData, mcv_k: usize, histogram_buckets: usize) -> TableStats {
        let columns = data
            .columns
            .iter()
            .map(|col| analyze_column(col, mcv_k, histogram_buckets))
            .collect();
        TableStats {
            name: data.name.clone(),
            rows: data.rows,
            columns,
        }
    }
}

fn analyze_column(values: &[Value], mcv_k: usize, histogram_buckets: usize) -> ColumnStats {
    let total = values.len().max(1);
    let mut non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    let null_fraction = (total - non_null.len()) as f64 / total as f64;
    let mut freq: HashMap<&Value, usize> = HashMap::new();
    for v in &non_null {
        *freq.entry(*v).or_insert(0) += 1;
    }
    let n_distinct = freq.len();
    let mut common: Vec<(&Value, usize)> = freq.into_iter().collect();
    common.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let most_common: Vec<(Value, f64)> = common
        .iter()
        .take(mcv_k)
        .filter(|(_, c)| *c > 1)
        .map(|(v, c)| ((*v).clone(), *c as f64 / total as f64))
        .collect();
    non_null.sort();
    let min = non_null.first().map(|v| (*v).clone());
    let max = non_null.last().map(|v| (*v).clone());
    let mut histogram = Vec::new();
    if non_null.len() >= histogram_buckets && histogram_buckets >= 2 {
        for b in 0..=histogram_buckets {
            let idx = (b * (non_null.len() - 1)) / histogram_buckets;
            histogram.push(non_null[idx].clone());
        }
    }
    ColumnStats {
        n_distinct,
        null_fraction,
        min,
        max,
        most_common,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: Vec<Value>) -> ColumnStats {
        analyze_column(&values, 4, 10)
    }

    #[test]
    fn distinct_and_bounds() {
        let s = col((0..100).map(Value::Int).collect());
        assert_eq!(s.n_distinct, 100);
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(99)));
        assert_eq!(s.null_fraction, 0.0);
    }

    #[test]
    fn null_fraction_counted() {
        let mut v: Vec<Value> = (0..50).map(Value::Int).collect();
        v.extend(std::iter::repeat_n(Value::Null, 50));
        let s = col(v);
        assert!((s.null_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mcv_catches_heavy_hitter() {
        let mut v: Vec<Value> = std::iter::repeat_n(Value::Str("F".into()), 90).collect();
        v.extend((0..10).map(Value::Int));
        let s = col(v);
        let sel = s.eq_selectivity(&Value::Str("F".into()));
        assert!((sel - 0.9).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn eq_selectivity_residual_uniform() {
        let v: Vec<Value> = (0..100).map(|i| Value::Int(i % 10)).collect();
        let s = col(v);
        let sel = s.eq_selectivity(&Value::Int(3));
        assert!(sel > 0.05 && sel < 0.2, "{sel}");
    }

    #[test]
    fn lt_selectivity_monotone() {
        let s = col((0..1000).map(Value::Int).collect());
        let lo = s.lt_selectivity(&Value::Int(100));
        let hi = s.lt_selectivity(&Value::Int(900));
        assert!(lo < hi);
        assert!((lo - 0.1).abs() < 0.05, "{lo}");
        assert!((hi - 0.9).abs() < 0.05, "{hi}");
    }

    #[test]
    fn lt_out_of_range() {
        let s = col((10..20).map(Value::Int).collect());
        assert_eq!(s.lt_selectivity(&Value::Int(5)), 0.0);
        assert_eq!(s.lt_selectivity(&Value::Int(100)), 1.0);
    }

    #[test]
    fn gt_complements_lt() {
        let s = col((0..1000).map(Value::Int).collect());
        let lt = s.lt_selectivity(&Value::Int(250));
        let gt = s.gt_selectivity(&Value::Int(250));
        assert!((lt + gt - 1.0).abs() < 0.01);
    }

    #[test]
    fn analyze_whole_table() {
        use crate::datagen::generate;
        use crate::schemas::tpch_catalog;
        let cat = tpch_catalog();
        let data = generate(&cat, 0.0001, 1);
        let orders = data.iter().find(|t| t.name == "orders").unwrap();
        let stats = TableStats::analyze(orders, 8, 20);
        assert_eq!(stats.rows, orders.rows);
        // o_orderkey is serial: fully distinct.
        assert_eq!(stats.columns[0].n_distinct, orders.rows);
        // o_orderstatus has 3 categories.
        assert!(stats.columns[2].n_distinct <= 3);
    }

    #[test]
    fn empty_column_is_safe() {
        let s = col(vec![]);
        assert_eq!(s.n_distinct, 0);
        assert_eq!(s.eq_selectivity(&Value::Int(1)), 0.0);
    }
}
