//! Relational schema model: catalogs, tables, columns, and foreign-key
//! relationships. The FK graph is what both the cost-based planner and
//! the Kipf-style random query generator walk.

use std::collections::HashMap;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Text,
    Date,
    Bool,
}

/// How a synthetic column's values are generated; also documents the
/// real benchmark column the definition mirrors.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Sequential primary key 0..n.
    Serial,
    /// Uniform integers in `[lo, hi]`.
    UniformInt(i64, i64),
    /// Zipf-skewed integers in `[0, n)` with exponent `s` (hot keys are
    /// common in FK columns; drives interesting join selectivities).
    ZipfInt(u64, f64),
    /// Uniform floats in `[lo, hi)`.
    UniformFloat(f64, f64),
    /// Uniform dates over `[lo, hi]` days since the TPC-H epoch.
    DateRange(i32, i32),
    /// Categorical with the given dictionary, uniform.
    Categorical(&'static [&'static str]),
    /// Short pseudo-text built from a fixed wordlist; `usize` = words.
    Words(usize),
    /// Foreign key into another table's serial PK (table name stored in
    /// [`ForeignKey`]); values are Zipf-skewed over the parent domain.
    ForeignKey,
}

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub distribution: Distribution,
    /// Fraction of NULLs to inject (0.0 for key columns).
    pub null_fraction: f64,
    /// Whether a secondary index exists on this column (access-path
    /// choice input for the planner).
    pub indexed: bool,
}

impl Column {
    /// Plain column with no nulls and no index.
    pub fn new(name: &str, ty: ColumnType, distribution: Distribution) -> Self {
        Column {
            name: name.to_string(),
            ty,
            distribution,
            null_fraction: 0.0,
            indexed: false,
        }
    }

    /// Builder: mark indexed.
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }

    /// Builder: set null fraction.
    pub fn with_nulls(mut self, fraction: f64) -> Self {
        self.null_fraction = fraction;
        self
    }
}

/// Foreign key edge: `table.column -> parent_table.parent_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub table: String,
    pub column: String,
    pub parent_table: String,
    pub parent_column: String,
}

/// A table definition with a base cardinality (rows at scale factor
/// 1.0; the data generator scales this).
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub base_rows: usize,
    /// Index of the primary-key column in `columns`, if any.
    pub primary_key: Option<usize>,
}

impl Table {
    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// A named schema: tables plus the FK graph.
#[derive(Debug, Clone)]
pub struct Catalog {
    pub name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new(name: &str) -> Self {
        Catalog {
            name: name.to_string(),
            tables: Vec::new(),
            by_name: HashMap::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a table (panics on duplicate names — schemas are static).
    pub fn add_table(&mut self, table: Table) {
        assert!(
            !self.by_name.contains_key(&table.name),
            "duplicate table {}",
            table.name
        );
        self.by_name.insert(table.name.clone(), self.tables.len());
        self.tables.push(table);
    }

    /// Register a foreign key (both endpoints must exist).
    pub fn add_foreign_key(
        &mut self,
        table: &str,
        column: &str,
        parent: &str,
        parent_column: &str,
    ) {
        assert!(
            self.table(table).and_then(|t| t.column(column)).is_some(),
            "{table}.{column}"
        );
        assert!(
            self.table(parent)
                .and_then(|t| t.column(parent_column))
                .is_some(),
            "{parent}.{parent_column}"
        );
        self.foreign_keys.push(ForeignKey {
            table: table.to_string(),
            column: column.to_string(),
            parent_table: parent.to_string(),
            parent_column: parent_column.to_string(),
        });
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|&i| &self.tables[i])
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// FK edges incident to `table` (either direction) — join
    /// candidates for the random query generator.
    pub fn join_edges(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.table == table || fk.parent_table == table)
            .collect()
    }

    /// Find the unique table that owns an unqualified column name, if
    /// exactly one table has it (used by name resolution).
    pub fn table_of_column(&self, column: &str) -> Option<&Table> {
        let mut found = None;
        for t in &self.tables {
            if t.column(column).is_some() {
                if found.is_some() {
                    return None;
                }
                found = Some(t);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Catalog {
        let mut c = Catalog::new("tiny");
        c.add_table(Table {
            name: "a".into(),
            columns: vec![
                Column::new("a_id", ColumnType::Int, Distribution::Serial),
                Column::new("a_val", ColumnType::Int, Distribution::UniformInt(0, 9)),
            ],
            base_rows: 100,
            primary_key: Some(0),
        });
        c.add_table(Table {
            name: "b".into(),
            columns: vec![
                Column::new("b_id", ColumnType::Int, Distribution::Serial),
                Column::new("b_a_id", ColumnType::Int, Distribution::ForeignKey),
            ],
            base_rows: 500,
            primary_key: Some(0),
        });
        c.add_foreign_key("b", "b_a_id", "a", "a_id");
        c
    }

    #[test]
    fn table_lookup() {
        let c = tiny();
        assert!(c.table("a").is_some());
        assert!(c.table("missing").is_none());
        assert_eq!(c.table("b").unwrap().column_index("b_a_id"), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut c = tiny();
        c.add_table(Table {
            name: "a".into(),
            columns: vec![],
            base_rows: 0,
            primary_key: None,
        });
    }

    #[test]
    fn join_edges_bidirectional() {
        let c = tiny();
        assert_eq!(c.join_edges("a").len(), 1);
        assert_eq!(c.join_edges("b").len(), 1);
    }

    #[test]
    #[should_panic]
    fn fk_requires_existing_columns() {
        let mut c = tiny();
        c.add_foreign_key("b", "nope", "a", "a_id");
    }

    #[test]
    fn unique_column_owner() {
        let c = tiny();
        assert_eq!(c.table_of_column("a_val").unwrap().name, "a");
        assert!(c.table_of_column("missing").is_none());
    }
}
