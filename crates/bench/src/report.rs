//! Fixed-width table printing for the benchmark harnesses — every
//! figure/table bench prints the same rows/series the paper reports
//! through this type.

/// A printable table.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Title, e.g. `Table 4: Diversity among the training samples`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// New empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TableReport {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str("\n== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableReport::new("Demo", &["Method", "Score"]);
        t.row(&["QEP2Seq+BERT", "73.73"]);
        t.row(&["QEP2Seq", "51.46"]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("QEP2Seq+BERT  73.73"));
        let lines: Vec<&str> = r.lines().collect();
        // Header and separator present.
        assert!(lines.iter().any(|l| l.starts_with("Method")));
        assert!(lines.iter().any(|l| l.starts_with("---")));
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TableReport::new("R", &["A"]);
        t.row(&["1", "2", "3"]);
        assert!(t.render().contains("1  2  3"));
    }
}
