//! Shared infrastructure for the figure/table harnesses: databases,
//! stores, narration pipelines, and scaled-down-by-default sizing.
//!
//! Every harness honours `LANTERN_BENCH_SCALE` (default `1.0`): set it
//! higher (e.g. `4`) for longer, closer-to-paper runs.

use crate::workloads::{sdss_workload, tpch_workload};
use lantern_catalog::{dblp_catalog, imdb_catalog, sdss_catalog, tpch_catalog};
use lantern_core::{decompose_acts, Act, NarrationRequest, RuleLantern};
use lantern_engine::{Database, Planner, QueryGenConfig, RandomQueryGen};
use lantern_neural::{DatasetBuilder, Qep2Seq, Qep2SeqConfig, TrainingSet};
use lantern_nn::TrainOptions;
use lantern_pool::{default_mssql_store, PoemStore};
use lantern_sql::parse_sql;

/// Relative effort multiplier from `LANTERN_BENCH_SCALE`.
pub fn bench_scale() -> f64 {
    std::env::var("LANTERN_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Shared benchmark context: the four domain databases and the
/// two-source POEM store.
pub struct BenchContext {
    /// TPC-H instance.
    pub tpch: Database,
    /// SDSS instance.
    pub sdss: Database,
    /// IMDB instance (cross-domain test set).
    pub imdb: Database,
    /// DBLP instance (running example).
    pub dblp: Database,
    /// POEM store with `pg` + `mssql` catalogs.
    pub store: PoemStore,
}

impl BenchContext {
    /// Build the standard context (small but realistic data scales).
    pub fn new() -> Self {
        let s = bench_scale();
        BenchContext {
            tpch: Database::generate(&tpch_catalog(), 0.0002 * s, 42),
            sdss: Database::generate(&sdss_catalog(), 0.0002 * s, 43),
            imdb: Database::generate(&imdb_catalog(), 0.0002 * s, 44),
            dblp: Database::generate(&dblp_catalog(), 0.0003 * s, 45),
            store: default_mssql_store(),
        }
    }

    /// RULE-LANTERN narrations for a SQL workload against `db`.
    pub fn rule_narrations(&self, db: &Database, workload: &[String]) -> Vec<String> {
        let planner = Planner::new(db);
        let rule = RuleLantern::new(&self.store);
        workload
            .iter()
            .filter_map(|sql| {
                let q = parse_sql(sql).ok()?;
                let plan = planner.plan(&q).ok()?;
                rule.narrate(&plan.tree()).ok().map(|n| n.text())
            })
            .collect()
    }

    /// Unified-API narration requests for a SQL workload against `db`.
    /// Plans are pre-resolved into trees so downstream measurements
    /// isolate narration (no parse cost in either the single-request or
    /// the batched path).
    pub fn narration_requests(&self, db: &Database, workload: &[String]) -> Vec<NarrationRequest> {
        let planner = Planner::new(db);
        workload
            .iter()
            .filter_map(|sql| {
                let q = parse_sql(sql).ok()?;
                let plan = planner.plan(&q).ok()?;
                Some(NarrationRequest::from_tree(plan.tree()))
            })
            .collect()
    }

    /// Acts for a SQL workload against `db`.
    pub fn workload_acts(&self, db: &Database, workload: &[String]) -> Vec<Act> {
        let planner = Planner::new(db);
        let mut acts = Vec::new();
        for sql in workload {
            let Ok(q) = parse_sql(sql) else { continue };
            let Ok(plan) = planner.plan(&q) else { continue };
            if let Ok(a) = decompose_acts(&plan.tree(), &self.store) {
                acts.extend(a);
            }
        }
        acts
    }

    /// The paper's training configuration: TPC-H + SDSS workloads plus
    /// random queries, paraphrase-expanded.
    pub fn paper_training_set(&self, extra_random: usize, paraphrase: bool) -> TrainingSet {
        let tpch_q: Vec<_> = tpch_workload()
            .iter()
            .filter_map(|s| parse_sql(s).ok())
            .collect();
        let sdss_q: Vec<_> = sdss_workload()
            .iter()
            .filter_map(|s| parse_sql(s).ok())
            .collect();
        let mut builder = DatasetBuilder::new(&self.tpch, &self.store)
            .with_queries(&tpch_q)
            .paraphrase(paraphrase);
        if extra_random > 0 {
            builder = builder.with_random_queries(extra_random, 77);
        }
        let mut ts = builder.build();
        // SDSS acts (separate database) appended through a second
        // builder, sharing the vocabulary construction at the end.
        let sdss_ts = DatasetBuilder::new(&self.sdss, &self.store)
            .with_queries(&sdss_q)
            .paraphrase(paraphrase)
            .build();
        ts.examples.extend(sdss_ts.examples);
        ts.act_count += sdss_ts.act_count;
        let input_vocab = lantern_text::Vocab::from_corpus(
            &ts.examples
                .iter()
                .map(|e| e.input_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        );
        let output_vocab = lantern_text::Vocab::from_corpus(
            &ts.examples
                .iter()
                .map(|e| e.output_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        );
        ts.input_vocab = input_vocab;
        ts.output_vocab = output_vocab;
        ts
    }

    /// IMDB test acts (the paper's cross-domain test set).
    pub fn imdb_test_acts(&self, n_queries: usize) -> Vec<Act> {
        let mut gen = RandomQueryGen::new(&self.imdb, 123, QueryGenConfig::default());
        let queries = gen.generate(n_queries);
        let planner = Planner::new(&self.imdb);
        let mut acts = Vec::new();
        for q in &queries {
            let Ok(plan) = planner.plan(q) else { continue };
            if let Ok(a) = decompose_acts(&plan.tree(), &self.store) {
                acts.extend(a);
            }
        }
        acts
    }
}

impl Default for BenchContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared study wiring.
pub mod studies {
    use super::*;

    /// Narration streams for the boredom/interest studies: rule
    /// narrations repeat phrasing; neural ones vary (trained model).
    ///
    /// Following the paper's US 3 protocol, queries are filtered so
    /// every plan contains a join *and* an aggregate — near-identical
    /// plan shapes are what make repetitive wording noticeable.
    pub fn narration_streams(
        ctx: &BenchContext,
        neural: &lantern_neural::NeuralLantern,
        n: usize,
    ) -> (Vec<String>, Vec<String>) {
        let queries = similar_plan_queries(ctx, n);
        let planner = Planner::new(&ctx.imdb);
        let rule = RuleLantern::new(&ctx.store);
        let mut rule_out = Vec::new();
        let mut neural_out = Vec::new();
        for q in &queries {
            let Ok(plan) = planner.plan(q) else { continue };
            let tree = plan.tree();
            if let Ok(nar) = rule.narrate(&tree) {
                rule_out.push(nar.text());
            }
            if let Ok(steps) = neural.describe(&tree) {
                neural_out.push(
                    steps
                        .iter()
                        .enumerate()
                        .map(|(i, s)| format!("{}. {}", i + 1, s))
                        .collect::<Vec<_>>()
                        .join("\n"),
                );
            }
        }
        (rule_out, neural_out)
    }

    /// Random IMDB queries whose plans all contain a join and an
    /// aggregate (the paper's US 3 "each of which contains Hash Join
    /// and Aggregate operators" protocol).
    pub fn similar_plan_queries(ctx: &BenchContext, n: usize) -> Vec<lantern_sql::Query> {
        let mut gen = RandomQueryGen::new(&ctx.imdb, 55, QueryGenConfig::default());
        let planner = Planner::new(&ctx.imdb);
        let mut queries = Vec::new();
        let mut rounds = 0;
        while queries.len() < n && rounds < 50 {
            for q in gen.generate(40) {
                let Ok(plan) = planner.plan(&q) else { continue };
                let ops: Vec<String> = lantern_plan::post_order(&plan.tree().root)
                    .iter()
                    .map(|i| i.node.op.clone())
                    .collect();
                let has_join = ops.iter().any(|o| o.contains("Join") || o.contains("Loop"));
                let has_agg = ops.iter().any(|o| o.contains("Aggregate"));
                if has_join && has_agg {
                    queries.push(q);
                    if queries.len() >= n {
                        break;
                    }
                }
            }
            rounds += 1;
        }
        queries
    }
}

/// Quick-training configuration for harnesses (small model, few
/// epochs, scaled by `LANTERN_BENCH_SCALE`).
pub fn quick_config(epochs: usize, seed: u64) -> Qep2SeqConfig {
    let s = bench_scale();
    Qep2SeqConfig {
        hidden: 32,
        encoder_embed_dim: 10,
        decoder_embed_dim: 16,
        attention_dim: 16,
        share_recurrent_weights: false,
        seed,
        train: TrainOptions {
            epochs: ((epochs as f64) * s).round().max(2.0) as usize,
            batch_size: 4,
            learning_rate: 0.25,
            clip: 5.0,
            early_stop_fluctuation: None,
            seed,
            parallel: false,
        },
    }
}

/// Train a fresh random-embedding model on `ts` (convenience).
pub fn train_quick(ts: &TrainingSet, epochs: usize, seed: u64) -> Qep2Seq {
    let mut m = Qep2Seq::new(ts, quick_config(epochs, seed));
    m.train(ts);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_narrates_tpch() {
        let ctx = BenchContext::new();
        let narrations = ctx.rule_narrations(&ctx.tpch, &tpch_workload());
        assert_eq!(narrations.len(), 22);
        assert!(narrations[0].contains("1. "));
    }

    #[test]
    fn paper_training_set_combines_tpch_and_sdss() {
        let ctx = BenchContext::new();
        let ts = ctx.paper_training_set(0, false);
        // 22 TPC-H + 71 SDSS plans decompose into well over 93 acts.
        assert!(ts.act_count > 150, "{}", ts.act_count);
        assert_eq!(ts.examples.len(), ts.act_count);
    }

    #[test]
    fn imdb_acts_generate() {
        let ctx = BenchContext::new();
        let acts = ctx.imdb_test_acts(20);
        assert!(acts.len() >= 20);
    }

    #[test]
    fn scale_env_parses() {
        assert!(bench_scale() > 0.0);
    }
}
