//! # lantern-bench
//!
//! Benchmark harnesses regenerating every table and figure of the
//! paper's evaluation (§7), plus criterion micro-benchmarks and the
//! ablation studies called out in DESIGN.md.
//!
//! Each `benches/<id>_*.rs` target prints the same rows/series the
//! paper reports and is runnable via `cargo bench`. Shared
//! infrastructure lives here: the 22 TPC-H-shaped workload queries, the
//! 71 SDSS-shaped workload queries, pipeline builders, and a tiny
//! fixed-width table printer.

pub mod pipelines;
pub mod report;
pub mod workloads;

pub use pipelines::{bench_scale, quick_config, studies, train_quick, BenchContext};
pub use report::TableReport;
pub use workloads::{sdss_workload, tpch_workload};
