//! Benchmark workloads: 22 TPC-H-shaped queries (the paper trains on
//! the 22 TPC-H queries' plans) and 71 SDSS-shaped queries (the
//! SkyServer predefined workload the paper draws 608 samples from).
//! Every query parses, resolves, plans, and executes against the
//! corresponding `lantern-catalog` schema.

/// 22 TPC-H-shaped workload queries (Q1–Q22 analogues over our TPC-H
/// schema: aggregation-heavy reports, multi-way FK joins, selective
/// filters, sorting, distinct, limits).
pub fn tpch_workload() -> Vec<String> {
    vec![
        // Q1: pricing summary report.
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
         AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate < 2400 \
         GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag".to_string(),
        // Q2: minimum-cost supplier.
        "SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey FROM part p, supplier s, \
         partsupp ps, nation n WHERE p.p_partkey = ps.ps_partkey AND \
         s.s_suppkey = ps.ps_suppkey AND s.s_nationkey = n.n_nationkey AND p.p_size = 15 \
         ORDER BY s.s_acctbal DESC LIMIT 100".to_string(),
        // Q3: shipping priority.
        "SELECT o.o_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, \
         o.o_orderdate FROM customer c, orders o, lineitem l WHERE \
         c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey AND \
         l.l_orderkey = o.o_orderkey AND o.o_orderdate < 1900 \
         GROUP BY o.o_orderkey, o.o_orderdate ORDER BY revenue DESC LIMIT 10".to_string(),
        // Q4: order priority checking.
        "SELECT o_orderpriority, COUNT(*) FROM orders WHERE o_orderdate > 1000 AND \
         o_orderdate < 1090 GROUP BY o_orderpriority ORDER BY o_orderpriority".to_string(),
        // Q5: local supplier volume.
        "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM \
         customer c, orders o, lineitem l, supplier s, nation n WHERE \
         c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey AND \
         l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
         GROUP BY n.n_name ORDER BY revenue DESC".to_string(),
        // Q6: forecasting revenue change.
        "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE \
         l_shipdate > 1000 AND l_shipdate < 1365 AND l_discount BETWEEN 0.05 AND 0.07 \
         AND l_quantity < 24".to_string(),
        // Q7: volume shipping.
        "SELECT n.n_name, SUM(l.l_extendedprice) FROM supplier s, lineitem l, orders o, \
         nation n WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey AND \
         s.s_nationkey = n.n_nationkey GROUP BY n.n_name ORDER BY n.n_name".to_string(),
        // Q8: national market share.
        "SELECT o.o_orderdate, SUM(l.l_extendedprice * (1 - l.l_discount)) FROM part p, \
         lineitem l, orders o WHERE p.p_partkey = l.l_partkey AND \
         l.l_orderkey = o.o_orderkey AND p.p_type = 'ECONOMY ANODIZED STEEL' \
         GROUP BY o.o_orderdate".to_string(),
        // Q9: product type profit.
        "SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount) - \
         ps.ps_supplycost * l.l_quantity) AS profit FROM part p, supplier s, lineitem l, \
         partsupp ps, nation n WHERE s.s_suppkey = l.l_suppkey AND \
         ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey AND \
         s.s_nationkey = n.n_nationkey GROUP BY n.n_name ORDER BY n.n_name".to_string(),
        // Q10: returned item reporting.
        "SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
         FROM customer c, orders o, lineitem l WHERE c.c_custkey = o.o_custkey AND \
         l.l_orderkey = o.o_orderkey AND l.l_returnflag = 'R' GROUP BY c.c_custkey, c.c_name \
         ORDER BY revenue DESC LIMIT 20".to_string(),
        // Q11: important stock identification.
        "SELECT ps.ps_partkey, SUM(ps.ps_supplycost * ps.ps_availqty) AS value FROM \
         partsupp ps, supplier s, nation n WHERE ps.ps_suppkey = s.s_suppkey AND \
         s.s_nationkey = n.n_nationkey AND n.n_name = 'GERMANY' GROUP BY ps.ps_partkey \
         ORDER BY value DESC".to_string(),
        // Q12: shipping modes and order priority.
        "SELECT l_shipmode, COUNT(*) FROM lineitem WHERE l_shipmode IN ('MAIL', 'SHIP') \
         AND l_receiptdate > l_commitdate GROUP BY l_shipmode ORDER BY l_shipmode".to_string(),
        // Q13: customer distribution.
        "SELECT c.c_custkey, COUNT(*) AS c_count FROM customer c, orders o WHERE \
         c.c_custkey = o.o_custkey GROUP BY c.c_custkey ORDER BY c_count DESC LIMIT 50".to_string(),
        // Q14: promotion effect.
        "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) FROM lineitem l, part p WHERE \
         l.l_partkey = p.p_partkey AND l.l_shipdate BETWEEN 1200 AND 1230".to_string(),
        // Q15: top supplier.
        "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue FROM \
         lineitem WHERE l_shipdate > 2000 GROUP BY l_suppkey ORDER BY total_revenue DESC \
         LIMIT 1".to_string(),
        // Q16: parts/supplier relationship.
        "SELECT p.p_brand, p.p_type, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt FROM \
         partsupp ps, part p WHERE p.p_partkey = ps.ps_partkey AND p.p_size IN (1, 9, 14) \
         GROUP BY p.p_brand, p.p_type ORDER BY supplier_cnt DESC".to_string(),
        // Q17: small-quantity-order revenue.
        "SELECT AVG(l.l_extendedprice) FROM lineitem l, part p WHERE \
         p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23' AND l.l_quantity < 5".to_string(),
        // Q18: large volume customer.
        "SELECT c.c_name, o.o_orderkey, SUM(l.l_quantity) AS total_qty FROM customer c, \
         orders o, lineitem l WHERE c.c_custkey = o.o_custkey AND \
         o.o_orderkey = l.l_orderkey GROUP BY c.c_name, o.o_orderkey HAVING SUM(l.l_quantity) > 150 \
         ORDER BY total_qty DESC LIMIT 100".to_string(),
        // Q19: discounted revenue.
        "SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM lineitem l, \
         part p WHERE p.p_partkey = l.l_partkey AND p.p_container = 'SM BOX' AND \
         l.l_quantity BETWEEN 1 AND 11".to_string(),
        // Q20: potential part promotion.
        "SELECT DISTINCT s.s_name FROM supplier s, nation n, partsupp ps WHERE \
         s.s_nationkey = n.n_nationkey AND ps.ps_suppkey = s.s_suppkey AND \
         n.n_name = 'CANADA' AND ps.ps_availqty > 5000 ORDER BY s.s_name".to_string(),
        // Q21: suppliers who kept orders waiting.
        "SELECT s.s_name, COUNT(*) AS numwait FROM supplier s, lineitem l, orders o, \
         nation n WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey AND \
         o.o_orderstatus = 'F' AND s.s_nationkey = n.n_nationkey GROUP BY s.s_name \
         ORDER BY numwait DESC LIMIT 100".to_string(),
        // Q22: global sales opportunity.
        "SELECT c_mktsegment, COUNT(*), AVG(c_acctbal) FROM customer WHERE c_acctbal > 0 \
         GROUP BY c_mktsegment ORDER BY c_mktsegment".to_string(),
    ]
}

/// 71 SDSS-shaped queries, mirroring the SkyServer predefined workload
/// (photometric cuts, spectroscopic joins, redshift selections). Built
/// from curated templates × parameter sweeps, totalling exactly 71.
pub fn sdss_workload() -> Vec<String> {
    let mut queries: Vec<String> = Vec::with_capacity(71);
    // 1-10: magnitude-cut photometric selections.
    for i in 0..10 {
        let cut = 14.0 + i as f64;
        queries.push(format!(
            "SELECT objid, ra, dec FROM photoobj WHERE r < {cut} AND clean = 1 LIMIT 100"
        ));
    }
    // 11-25: spectroscopic class selections.
    for (i, class) in ["GALAXY", "QSO", "STAR"].iter().enumerate() {
        for j in 0..5 {
            let z = 0.1 + 0.2 * j as f64;
            let _ = i;
            queries.push(format!(
                "SELECT s.specobjid, s.z_redshift FROM specobj s WHERE s.class = '{class}' \
                 AND s.z_redshift > {z} ORDER BY s.z_redshift DESC LIMIT 50"
            ));
        }
    }
    // 26-40: photo-spectro joins.
    for j in 0..15 {
        let mag = 15.0 + 0.5 * j as f64;
        queries.push(format!(
            "SELECT p.objid, p.ra, p.dec, s.z_redshift FROM photoobj p, specobj s WHERE \
             s.bestobjid = p.objid AND p.g < {mag} LIMIT 200"
        ));
    }
    // 41-50: galaxy-shape studies.
    for j in 0..10 {
        let ab = 0.1 + 0.08 * j as f64;
        queries.push(format!(
            "SELECT g.gal_objid, g.petromag_r FROM galaxy g, photoobj p WHERE \
             g.gal_objid = p.objid AND g.expab_r > {ab} ORDER BY g.petromag_r LIMIT 100"
        ));
    }
    // 51-60: photometric-redshift aggregates.
    for j in 0..10 {
        let z = 0.05 + 0.1 * j as f64;
        queries.push(format!(
            "SELECT COUNT(*), AVG(z.photozerr) FROM photoz z WHERE z.photoz > {z}"
        ));
    }
    // 61-68: per-class statistics.
    for class in ["GALAXY", "QSO", "STAR"] {
        queries.push(format!(
            "SELECT s.survey, COUNT(*) FROM specobj s WHERE s.class = '{class}' \
             GROUP BY s.survey ORDER BY s.survey"
        ));
    }
    for survey in ["boss", "eboss", "sdss", "segue1", "segue2"] {
        queries.push(format!(
            "SELECT AVG(s.z_redshift), MAX(s.z_redshift) FROM specobj s WHERE \
             s.survey = '{survey}'"
        ));
    }
    // 69-71: three-way joins with distinct.
    queries.push(
        "SELECT DISTINCT p.run FROM photoobj p, specobj s WHERE s.bestobjid = p.objid \
         AND s.class = 'QSO' ORDER BY p.run LIMIT 25"
            .to_string(),
    );
    queries.push(
        "SELECT p.camcol, COUNT(*) FROM photoobj p, photoz z WHERE z.pz_objid = p.objid \
         AND z.photoz BETWEEN 0.2 AND 0.4 GROUP BY p.camcol ORDER BY p.camcol"
            .to_string(),
    );
    queries.push(
        "SELECT s.plate, s.mjd, s.fiberid FROM specobj s, photoobj p, galaxy g WHERE \
         s.bestobjid = p.objid AND g.gal_objid = p.objid AND s.z_redshift < 0.1 LIMIT 40"
            .to_string(),
    );
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_catalog::{sdss_catalog, tpch_catalog};
    use lantern_engine::{Database, Planner};
    use lantern_sql::{parse_sql, resolve};

    #[test]
    fn tpch_workload_has_22_queries_that_all_plan() {
        let qs = tpch_workload();
        assert_eq!(qs.len(), 22);
        let db = Database::generate(&tpch_catalog(), 0.0002, 1);
        let planner = Planner::new(&db);
        for (i, sql) in qs.iter().enumerate() {
            let q = parse_sql(sql).unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
            resolve(&q, db.catalog()).unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
            planner
                .plan(&q)
                .unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
        }
    }

    #[test]
    fn sdss_workload_has_71_queries_that_all_plan() {
        let qs = sdss_workload();
        assert_eq!(qs.len(), 71);
        let db = Database::generate(&sdss_catalog(), 0.0002, 1);
        let planner = Planner::new(&db);
        for (i, sql) in qs.iter().enumerate() {
            let q = parse_sql(sql).unwrap_or_else(|e| panic!("S{}: {e}", i + 1));
            planner
                .plan(&q)
                .unwrap_or_else(|e| panic!("S{}: {e}", i + 1));
        }
    }

    #[test]
    fn tpch_workload_queries_execute() {
        let db = Database::generate(&tpch_catalog(), 0.0001, 2);
        let planner = Planner::new(&db);
        for sql in tpch_workload() {
            let q = parse_sql(&sql).unwrap();
            let plan = planner.plan(&q).unwrap();
            lantern_engine::exec::execute(&plan, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn workloads_cover_diverse_operators() {
        let db = Database::generate(&tpch_catalog(), 0.0002, 3);
        let planner = Planner::new(&db);
        let mut ops = std::collections::HashSet::new();
        for sql in tpch_workload() {
            let plan = planner.plan(&parse_sql(&sql).unwrap()).unwrap();
            for item in lantern_plan::post_order(&plan.tree().root) {
                ops.insert(item.node.op.clone());
            }
        }
        for needed in ["Seq Scan", "Hash Join", "Aggregate", "Sort", "Limit"] {
            assert!(
                ops.contains(needed),
                "workload never produces {needed}: {ops:?}"
            );
        }
    }
}
