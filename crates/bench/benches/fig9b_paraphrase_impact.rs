//! Figure 9(b) / US 2: Q2 quality with vs without paraphrasing in the
//! training data. Paper shape: without paraphrasing the model overfits
//! the tiny sample set and emits many error tokens (e.g. missing filter
//! conditions), so user experience drops.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::Qep2Seq;
use lantern_study::{q2_quality_survey, Population};
use lantern_text::token_edit_distance;

fn main() {
    let ctx = BenchContext::new();
    let with_para = ctx.paper_training_set(15, true);
    let without_para = ctx.paper_training_set(15, false);
    let test_acts = ctx.imdb_test_acts(20);

    let mut conditions = Vec::new();
    for (label, ts) in [
        ("with paraphrasing", &with_para),
        ("w/o paraphrasing", &without_para),
    ] {
        let mut model = Qep2Seq::new(ts, quick_config(10, 14));
        model.train(ts);
        let mut wrong = 0usize;
        let mut total = 0usize;
        let mut texts = Vec::new();
        for act in &test_acts {
            let hyp = model.translate_act_tagged(act, 4);
            wrong += token_edit_distance(&hyp, &act.output_tokens());
            total += act.output_tokens().len();
            texts.push(model.translate_act(act, 4));
        }
        let acc = (1.0 - wrong as f64 / total.max(1) as f64).clamp(0.0, 1.0);
        println!(
            "{label}: training samples {}, token accuracy {acc:.3}",
            ts.examples.len()
        );
        conditions.push((label.to_string(), texts, acc));
    }

    let mut pop = Population::sample(43, 23);
    let report = q2_quality_survey(&mut pop, &conditions);
    let mut t = TableReport::new(
        "Figure 9(b): Q2 with vs without paraphrasing (US 2)",
        &["Condition", "1", "2", "3", "4", "5", ">3"],
    );
    for (label, hist) in &report.rows {
        let r = hist.row();
        t.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            format!("{:.1}%", hist.fraction_above_3() * 100.0),
        ]);
    }
    t.print();
    println!("paper shape: user experience without paraphrasing is worse than with");
}
