//! Cold vs warm narration throughput through the plan-fingerprint
//! cache (`lantern-cache`), across all three backends, on an 8-query
//! TPC-H workload submitted as raw PG-JSON documents — the classroom
//! shape: students paste the same `EXPLAIN` artifacts over and over.
//!
//! Paths compared, per backend:
//!
//! * **cold** — the uncached translator (parse + narrate every time);
//! * **warm hit** — a pre-warmed [`CachedTranslator`]: the exact-text
//!   L1 index maps a byte-identical re-submission to its canonical
//!   fingerprint without parsing, and the sharded LRU answers;
//! * **batch, 75% duplicates** — a 32-request batch with 8 unique
//!   plans through in-batch dedup on a cold cache, against the cost of
//!   narrating just the 8 unique plans uncached (the dedup ideal).
//!
//! Acceptance (ISSUE 5): warm hits ≥ 10× the cold rule path and ≥ 50×
//! the cold neural path on one core; the duplicate-heavy batch lands
//! within noise of unique-count time.
//!
//! Run with: `cargo bench --bench cache_throughput`
//! (`LANTERN_BENCH_SCALE` scales the iteration count.)

use lantern_bench::{bench_scale, quick_config, tpch_workload, BenchContext, TableReport};
use lantern_cache::{CacheConfig, CachedTranslator};
use lantern_core::{NarrationRequest, RuleTranslator, Translator};
use lantern_neural::{NeuralLantern, Qep2Seq};
use lantern_neuron::Neuron;
use lantern_plan::plan_to_pg_json;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn requests_of(docs: &[String]) -> Vec<NarrationRequest> {
    docs.iter()
        .map(|d| NarrationRequest::auto(d.as_str()).expect("pg json detects"))
        .collect()
}

/// Narrate every request `iters` times; returns the elapsed wall time.
fn run<T: Translator>(translator: &T, reqs: &[NarrationRequest], iters: usize) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        for req in reqs {
            black_box(translator.narrate(req).expect("narrates"));
        }
    }
    start.elapsed()
}

struct BackendRows {
    name: &'static str,
    cold: Duration,
    warm: Duration,
    per: usize,
}

fn bench_backend<T: Translator>(
    name: &'static str,
    translator: T,
    reqs: &[NarrationRequest],
    iters: usize,
) -> BackendRows {
    // Cold: the bare translator, full pipeline every call.
    let cold = run(&translator, reqs, iters);
    // Warm: cache in front, entries pre-filled.
    let cached = CachedTranslator::new(translator, CacheConfig::default());
    for req in reqs {
        cached.narrate(req).expect("warm-up narrates");
    }
    let warm = run(&cached, reqs, iters);
    let stats = cached.cache().stats();
    assert_eq!(
        stats.misses,
        reqs.len() as u64,
        "{name}: warm runs must be pure hits"
    );
    BackendRows {
        name,
        cold,
        warm,
        per: reqs.len() * iters,
    }
}

fn main() {
    let ctx = BenchContext::new();
    let workload: Vec<String> = tpch_workload().into_iter().take(8).collect();
    let trees: Vec<_> = ctx
        .narration_requests(&ctx.tpch, &workload)
        .iter()
        .map(|r| r.resolve_tree().expect("tree request"))
        .collect();
    assert_eq!(trees.len(), 8, "all 8 TPC-H queries must plan");
    // Serialized documents — the wire shape students actually submit.
    let docs: Vec<String> = trees.iter().map(plan_to_pg_json).collect();
    let reqs = requests_of(&docs);

    let iters = ((300.0 * bench_scale()) as usize).max(30);

    // --- rule & neuron, full workload ------------------------------
    let mut rows = vec![bench_backend(
        "rule",
        RuleTranslator::new(ctx.store.clone()),
        &reqs,
        iters,
    )];
    rows.push(bench_backend("neuron", Neuron::new(), &reqs, iters));

    // --- neural: quick-trained tiny model, fewer iterations (a cold
    // --- decode is ~ms, not ~µs) -----------------------------------
    let ts = ctx.paper_training_set(0, false);
    let model = Qep2Seq::new(&ts, quick_config(2, 77));
    let neural = NeuralLantern::from_model(model, ctx.store.clone());
    let neural_iters = (iters / 10).max(3);
    rows.push(bench_backend("neural", neural, &reqs, neural_iters));

    let mut report = TableReport::new(
        "Plan-fingerprint cache: cold vs warm narration (8 TPC-H plans, raw PG JSON)",
        &["backend", "cold µs/plan", "warm-hit µs/plan", "speedup"],
    );
    for row in &rows {
        let cold_us = row.cold.as_secs_f64() * 1e6 / row.per as f64;
        let warm_us = row.warm.as_secs_f64() * 1e6 / row.per as f64;
        report.row(&[
            row.name.to_string(),
            format!("{cold_us:.1}"),
            format!("{warm_us:.2}"),
            format!("{:.1}x", cold_us / warm_us),
        ]);
    }
    report.print();

    // --- batch with 75% duplicates ---------------------------------
    // 32 requests over 8 unique plans; dedup should make the batch
    // cost ≈ the 8 unique narrations, not 32.
    let batch: Vec<NarrationRequest> = (0..32).map(|i| reqs[i % 8].clone()).collect();
    let rule = RuleTranslator::new(ctx.store.clone());
    let batch_iters = iters.min(100);

    // Ideal: just the unique plans, uncached.
    let t0 = Instant::now();
    for _ in 0..batch_iters {
        for req in &reqs {
            black_box(rule.narrate(req).expect("narrates"));
        }
    }
    let unique_only = t0.elapsed();

    // Dedup path: a *cold* cache every iteration, so every batch pays
    // 8 real narrations + 24 stitches (no cross-iteration hits).
    let cached = CachedTranslator::new(rule.clone(), CacheConfig::default());
    let mut dedup = Duration::ZERO;
    for _ in 0..batch_iters {
        cached.cache().clear();
        let t0 = Instant::now();
        black_box(cached.narrate_batch(&batch));
        dedup += t0.elapsed();
    }

    // Steady state: the same batch against a warm cache (pure hits).
    let t0 = Instant::now();
    for _ in 0..batch_iters {
        black_box(cached.narrate_batch(&batch));
    }
    let warm_batch = t0.elapsed();

    // Baseline: the same 32-request batch, no cache at all.
    let t0 = Instant::now();
    for _ in 0..batch_iters {
        black_box(rule.narrate_batch(&batch));
    }
    let uncached_batch = t0.elapsed();

    let mut report = TableReport::new(
        "In-batch dedup: 32-request batch, 8 unique plans (75% duplicates)",
        &["path", "ms/batch", "vs unique-only ideal"],
    );
    let ms = |d: Duration| d.as_secs_f64() * 1e3 / batch_iters as f64;
    report.row(&[
        "8 unique plans, uncached (ideal)".to_string(),
        format!("{:.3}", ms(unique_only)),
        "1.00x".to_string(),
    ]);
    report.row(&[
        "32-plan batch, cold cache + dedup".to_string(),
        format!("{:.3}", ms(dedup)),
        format!("{:.2}x", dedup.as_secs_f64() / unique_only.as_secs_f64()),
    ]);
    report.row(&[
        "32-plan batch, warm cache".to_string(),
        format!("{:.3}", ms(warm_batch)),
        format!(
            "{:.2}x",
            warm_batch.as_secs_f64() / unique_only.as_secs_f64()
        ),
    ]);
    report.row(&[
        "32-plan batch, uncached".to_string(),
        format!("{:.3}", ms(uncached_batch)),
        format!(
            "{:.2}x",
            uncached_batch.as_secs_f64() / unique_only.as_secs_f64()
        ),
    ]);
    report.print();
}
