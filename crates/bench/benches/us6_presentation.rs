//! US 6: document-style text vs visual-tree-annotated NL presentation.
//! Paper: 38 of 43 first-time learners chose the document style (linear
//! textbook-like reading beats per-node click-through integration).

use lantern_bench::TableReport;
use lantern_study::{us6_presentation_survey, Population};

fn main() {
    let mut pop = Population::sample(43, 101);
    let (doc, tree) = us6_presentation_survey(&mut pop);
    let mut t = TableReport::new(
        "US 6: preferred NL presentation (43 learners)",
        &["Presentation", "Votes", "Paper"],
    );
    t.row(&["Document-style text", &doc.to_string(), "38"]);
    t.row(&["Visual tree + per-node NL", &tree.to_string(), "5"]);
    t.print();
    assert!(
        doc > tree * 2,
        "document style must dominate: {doc} vs {tree}"
    );
    println!("shape check: document-style narration strongly preferred  ✓");
}
