//! Ablation: act-level vs whole-plan training inputs (§6.2's design
//! rationale). Whole-plan pairs are scarcer and longer; act-level
//! training yields more samples per operator and better validation
//! accuracy at equal budget.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::{Qep2Seq, TrainingSet};
use lantern_text::Vocab;

fn main() {
    let ctx = BenchContext::new();
    let act_level = ctx.paper_training_set(15, false);

    // Whole-plan variant: concatenate each plan's act inputs/outputs
    // into one long pair. Acts are regrouped by consecutive runs that
    // end with a root act (no <TN> binding).
    let mut whole_examples = Vec::new();
    let mut current_in: Vec<String> = Vec::new();
    let mut current_out: Vec<String> = Vec::new();
    for e in &act_level.examples {
        current_in.extend(e.input_tokens.clone());
        current_out.extend(e.output_tokens.clone());
        let is_root_act = !e.output_tokens.iter().any(|t| t == "<TN>");
        if is_root_act {
            whole_examples.push(lantern_neural::Example {
                input_tokens: std::mem::take(&mut current_in),
                output_tokens: std::mem::take(&mut current_out),
                paraphrased: false,
            });
        }
    }
    let whole = TrainingSet {
        input_vocab: Vocab::from_corpus(
            &whole_examples
                .iter()
                .map(|e| e.input_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        ),
        output_vocab: Vocab::from_corpus(
            &whole_examples
                .iter()
                .map(|e| e.output_tokens.clone())
                .collect::<Vec<_>>(),
            1,
        ),
        act_count: whole_examples.len(),
        examples: whole_examples,
    };

    let mut t = TableReport::new(
        "Ablation: act-level vs whole-plan training granularity",
        &[
            "Granularity",
            "#Pairs",
            "Avg output len",
            "Best val accuracy",
        ],
    );
    for (label, ts) in [("act-level", &act_level), ("whole-plan", &whole)] {
        let avg_len: f64 = ts
            .examples
            .iter()
            .map(|e| e.output_tokens.len() as f64)
            .sum::<f64>()
            / ts.examples.len().max(1) as f64;
        let mut model = Qep2Seq::new(ts, quick_config(8, 33));
        let report = model.train(ts);
        let best = report
            .epochs
            .iter()
            .map(|e| e.val_accuracy)
            .fold(0.0, f64::max);
        t.row(&[
            label.to_string(),
            ts.examples.len().to_string(),
            format!("{avg_len:.1}"),
            format!("{best:.3}"),
        ]);
    }
    t.print();
    println!(
        "paper rationale: act granularity multiplies training data and generalizes per operator"
    );
}
