//! Criterion micro-benchmarks: per-description response time of
//! RULE-LANTERN, NEURAL-LANTERN and NEURON (Table 6 / US 5 timing
//! claims), plus the supporting pipeline stages (planning, POOL
//! execution, plan parsing).

use criterion::{criterion_group, criterion_main, Criterion};
use lantern_bench::{quick_config, BenchContext};
use lantern_core::RuleLantern;
use lantern_engine::{ExplainFormat, Planner};
use lantern_neural::NeuralLantern;
use lantern_neuron::Neuron;
use lantern_plan::parse_pg_json_plan;
use lantern_sql::parse_sql;

fn benches(c: &mut Criterion) {
    let ctx = BenchContext::new();
    let planner = Planner::new(&ctx.tpch);
    let sql = "SELECT c.c_mktsegment, COUNT(*) FROM customer c, orders o, lineitem l \
               WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
               GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment";
    let query = parse_sql(sql).unwrap();
    let plan = planner.plan(&query).unwrap();
    let tree = plan.tree();
    let json = lantern_engine::explain::explain(&plan, ExplainFormat::PgJson);
    let rule = RuleLantern::new(&ctx.store);
    let mut config = quick_config(6, 3);
    config.train.epochs = 6;
    let (neural, _) = NeuralLantern::train_on(&ctx.tpch, &ctx.store, 20, config, 3);
    let neuron = Neuron::new();

    c.bench_function("rule_lantern_narrate", |b| {
        b.iter(|| rule.narrate(std::hint::black_box(&tree)).unwrap())
    });
    c.bench_function("neural_lantern_describe", |b| {
        b.iter(|| neural.describe(std::hint::black_box(&tree)).unwrap())
    });
    c.bench_function("neuron_describe", |b| {
        b.iter(|| neuron.describe(std::hint::black_box(&tree)).unwrap())
    });
    c.bench_function("planner_plan_3way_join", |b| {
        b.iter(|| planner.plan(std::hint::black_box(&query)).unwrap())
    });
    c.bench_function("parse_pg_json_plan", |b| {
        b.iter(|| parse_pg_json_plan(std::hint::black_box(&json)).unwrap())
    });
    c.bench_function("pool_compose_statement", |b| {
        b.iter(|| {
            lantern_pool::execute(
                std::hint::black_box("COMPOSE hash, hashjoin FROM pg"),
                &ctx.store,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = response;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(response);
