//! Figure 8(a): number of tokens in the input SQL vs RULE-LANTERN vs
//! NEURAL-LANTERN outputs over the 22 TPC-H workloads. Paper shape:
//! description length tracks plan complexity (relations/operators), not
//! SQL text length; neural output lengths stay close to rule output
//! lengths.

use lantern_bench::{quick_config, tpch_workload, BenchContext, TableReport};
use lantern_engine::Planner;
use lantern_neural::NeuralLantern;
use lantern_sql::parse_sql;
use lantern_text::word_tokenize;

fn main() {
    let ctx = BenchContext::new();
    let (neural, _) = NeuralLantern::train_on(&ctx.tpch, &ctx.store, 40, quick_config(14, 6), 6);
    let planner = Planner::new(&ctx.tpch);
    let rule = lantern_core::RuleLantern::new(&ctx.store);

    let mut t = TableReport::new(
        "Figure 8(a): token counts over the 22 TPC-H workloads",
        &[
            "Workload",
            "SQL tokens",
            "RULE-LANTERN tokens",
            "NEURAL-LANTERN tokens",
        ],
    );
    let mut rule_total = 0usize;
    let mut neural_total = 0usize;
    for (i, sql) in tpch_workload().iter().enumerate() {
        let q = parse_sql(sql).expect("workload parses");
        let plan = planner.plan(&q).expect("workload plans");
        let tree = plan.tree();
        let rule_text = rule.narrate(&tree).expect("narrates").text();
        let neural_text = neural.describe_text(&tree).expect("translates");
        let s = word_tokenize(sql).len();
        let r = word_tokenize(&rule_text).len();
        let n = word_tokenize(&neural_text).len();
        rule_total += r;
        neural_total += n;
        t.row(&[
            format!("Q{}", i + 1),
            s.to_string(),
            r.to_string(),
            n.to_string(),
        ]);
    }
    t.print();
    println!(
        "avg narration tokens: rule {:.1}, neural {:.1}  (paper shape: variability does not \
         significantly lengthen the output; length follows plan complexity, not SQL length)",
        rule_total as f64 / 22.0,
        neural_total as f64 / 22.0
    );
}
