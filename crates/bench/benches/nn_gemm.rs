//! The blocked-GEMM kernel vs the naive per-element path, plus the
//! end-to-end effect on seq2seq training (one copy-task epoch).
//!
//! Two tables:
//!
//! * **kernel** — blocked `matmul` / `matmul_t` / fused
//!   `gemm_bias_act` against their `*_naive` references at
//!   LSTM-shaped sizes (`[4h x h] . [h x h]`-ish squares);
//! * **training** — ms per epoch of the batched seq2seq trainer on a
//!   216-pair copy task with 8-token sequences over a 40-type
//!   vocabulary (narration-sentence-shaped; the seed per-element
//!   implementation measured 165.4 ms at h=64 and 550.9 ms at h=128
//!   on this harness).
//!
//! Run with: `cargo bench --bench nn_gemm`
//! (`LANTERN_BENCH_SCALE` scales the iteration count.)

use lantern_bench::{bench_scale, TableReport};
use lantern_nn::kernel::{
    gemm_bias_act, gemm_bias_act_naive, matmul, matmul_naive, matmul_t, matmul_t_naive, Activation,
};
use lantern_nn::matrix::seeded_rng;
use lantern_nn::{DecodeScratch, Matrix, Seq2Seq, Seq2SeqConfig, TrainOptions, Trainer};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sequence length and vocabulary size of the copy task — sized like a
/// tagged narration sentence, not a toy 2-token pair.
const SEQ_LEN: usize = 8;
const VOCAB: usize = 40;

fn copy_pairs() -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut v = Vec::new();
    let mut x = 7usize;
    for _ in 0..216 {
        let seq: Vec<usize> = (0..SEQ_LEN)
            .map(|i| {
                x = (x * 31 + i) % (VOCAB - 4);
                x + 4
            })
            .collect();
        v.push((seq.clone(), seq));
    }
    v
}

fn time<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters as u32
}

fn kernel_table(scale: f64) {
    let mut report = TableReport::new(
        "blocked kernel vs naive per-element path (us/op, square h x h)",
        &["h", "op", "naive us", "blocked us", "speedup"],
    );
    for h in [64usize, 128, 256] {
        let mut rng = seeded_rng(7);
        let a = Matrix::uniform(h, h, 0.5, &mut rng);
        let b = Matrix::uniform(h, h, 0.5, &mut rng);
        let bias: Vec<f32> = (0..h).map(|i| i as f32 * 1e-3).collect();
        let iters = ((200.0 * scale) as usize).max(10) / (h / 64).max(1);
        let rows: [(&str, Duration, Duration); 3] = [
            (
                "matmul",
                time(iters, || {
                    black_box(matmul_naive(black_box(&a), black_box(&b)));
                }),
                time(iters, || {
                    black_box(matmul(black_box(&a), black_box(&b)));
                }),
            ),
            (
                "matmul_t",
                time(iters, || {
                    black_box(matmul_t_naive(black_box(&a), black_box(&b)));
                }),
                time(iters, || {
                    black_box(matmul_t(black_box(&a), black_box(&b)));
                }),
            ),
            // Identity is the production configuration: the output layer
            // computes pre-softmax logits (tanh/sigmoid epilogues cost
            // the same in both paths and only dilute the GEMM's ratio).
            (
                "gemm_bias_act",
                time(iters, || {
                    black_box(gemm_bias_act_naive(
                        black_box(&a),
                        black_box(&b),
                        &bias,
                        Activation::Identity,
                    ));
                }),
                time(iters, || {
                    black_box(gemm_bias_act(
                        black_box(&a),
                        black_box(&b),
                        &bias,
                        Activation::Identity,
                    ));
                }),
            ),
        ];
        for (op, naive, blocked) in rows {
            report.row(&[
                format!("{h}"),
                op.to_string(),
                format!("{:.1}", naive.as_secs_f64() * 1e6),
                format!("{:.1}", blocked.as_secs_f64() * 1e6),
                format!("{:.2}x", naive.as_secs_f64() / blocked.as_secs_f64()),
            ]);
        }
    }
    report.print();
}

/// One beam-search decoder step, K hypotheses: K sequential
/// `decode_step_scratch` calls (a matvec per projection per
/// hypothesis) vs one `decode_step_batch` call (a `[K x d] . [d x 4h]`
/// GEMM per projection, via the small-m kernel that streams each
/// weight matrix through the cache once per step instead of once per
/// hypothesis). Tokens are identical by construction
/// (regression-tested in `lantern-nn`), so the only question is speed.
/// Each path is timed as the best of several blocks — the decoder
/// step is microseconds, and on a shared single-core host the *min*
/// is the signal; means smear scheduler noise across the ratio.
fn decode_step_table(scale: f64) {
    let mut report = TableReport::new(
        "beam decoder step: K sequential matvec steps vs one batched GEMM step (us/step)",
        &["hidden", "beam", "sequential us", "batched us", "speedup"],
    );
    for hidden in [64usize, 128] {
        let model = Seq2Seq::new(Seq2SeqConfig {
            input_vocab: VOCAB,
            output_vocab: VOCAB,
            hidden,
            encoder_embed_dim: 8,
            decoder_embed_dim: 8,
            attention_dim: hidden / 2,
            share_recurrent_weights: false,
            init_scale: 0.1,
            seed: 42,
        });
        let input: Vec<usize> = (4..4 + SEQ_LEN).collect();
        let enc = model.encode(&input);
        let init = model.decoder_init(&enc);
        let mut scratch = DecodeScratch::new();
        for beam in [4usize, 8] {
            let states = vec![init.clone(); beam];
            let prevs: Vec<usize> = (0..beam).map(|i| 4 + i).collect();
            let refs: Vec<&_> = states.iter().collect();
            let iters = ((100.0 * scale) as usize).max(20);
            let min_of = |f: &mut dyn FnMut()| {
                (0..5)
                    .map(|_| time(iters, &mut *f))
                    .min()
                    .expect("nonempty blocks")
            };
            let sequential = min_of(&mut || {
                for (state, &prev) in states.iter().zip(&prevs) {
                    black_box(model.decode_step_scratch(&enc, state, prev, &mut scratch));
                }
            });
            let batched = min_of(&mut || {
                black_box(model.decode_step_batch(&enc, &refs, &prevs, &mut scratch));
            });
            let speedup = sequential.as_secs_f64() / batched.as_secs_f64();
            report.row(&[
                format!("{hidden}"),
                format!("{beam}"),
                format!("{:.1}", sequential.as_secs_f64() * 1e6),
                format!("{:.1}", batched.as_secs_f64() * 1e6),
                format!("{speedup:.2}x"),
            ]);
            // Regression guard: the batched step must not lose
            // materially to the sequential one at production beam
            // widths. The dots are vector-ALU-bound on this host, so
            // the structural win (weights stream once per step, not
            // once per hypothesis) reads as a modest >1x here and
            // grows with SIMD width; 0.8 tolerates a shared core's
            // residual timer noise, not a real regression.
            assert!(
                speedup > 0.8,
                "batched decoder step slower than sequential at h={hidden} beam={beam}: {speedup:.2}x"
            );
        }
    }
    report.print();
}

fn epoch_time(hidden: usize, iters: usize, parallel: bool) -> Duration {
    let data = copy_pairs();
    let mut model = Seq2Seq::new(Seq2SeqConfig {
        input_vocab: VOCAB,
        output_vocab: VOCAB,
        hidden,
        encoder_embed_dim: 8,
        decoder_embed_dim: 8,
        attention_dim: hidden / 2,
        share_recurrent_weights: false,
        init_scale: 0.1,
        seed: 42,
    });
    let options = TrainOptions {
        epochs: iters,
        batch_size: 4,
        learning_rate: 0.05,
        clip: 5.0,
        early_stop_fluctuation: None,
        seed: 1,
        parallel,
    };
    let t0 = Instant::now();
    black_box(Trainer::new(options).train(&mut model, &data, &data[..8]));
    t0.elapsed() / iters as u32
}

fn main() {
    let scale = bench_scale();
    kernel_table(scale);
    decode_step_table(scale);

    let mut report = TableReport::new(
        "seq2seq training epoch, 216-pair 8-token copy task (ms/epoch)",
        &["hidden", "sequential", "parallel minibatch"],
    );
    for hidden in [64usize, 128] {
        let iters = ((4.0 * scale) as usize).max(2);
        let seq = epoch_time(hidden, iters, false);
        let par = epoch_time(hidden, iters, true);
        report.row(&[
            format!("{hidden}"),
            format!("{:.1}", seq.as_secs_f64() * 1e3),
            format!("{:.1}", par.as_secs_f64() * 1e3),
        ]);
    }
    report.print();
    println!(
        "(seed per-element implementation on this harness: 165.4 ms at h=64, 550.9 ms at h=128; {} core(s) available)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
}
