//! Load harness over the synthetic plan generator (`lantern-gen`):
//!
//! 1. **Generator throughput** — fresh-artifact emission rate per
//!    format, single-threaded. Acceptance (ISSUE 6): ≥ 10k distinct
//!    valid artifacts per second on one core, both formats; every
//!    sampled artifact must parse back through the real parsers.
//! 2. **Duplicate-rate soak curves** — the `lantern-serve` soak driver
//!    against an in-process cached server, sweeping the schedule's
//!    duplicate rate. The cache hit ratio must track the configured
//!    rate (the generator replays from a bounded history ring, so the
//!    mapping is exact up to sampling noise), and tail latency should
//!    fall as the duplicate rate rises.
//!
//! Run with: `cargo bench --bench load`
//! (`LANTERN_BENCH_SCALE` scales the request counts.)

use lantern_bench::{bench_scale, TableReport};
use lantern_cache::{CacheConfig, CacheControl, CachedTranslator};
use lantern_core::RuleTranslator;
use lantern_gen::{ArtifactFormat, FormatMix, GenConfig, PlanGenerator};
use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan};
use lantern_pool::default_mssql_store;
use lantern_serve::soak::{run_soak, SoakConfig};
use lantern_serve::{serve_with_cache, HttpClient, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Emit `n` fresh artifacts in `format`; returns (docs, artifacts/s).
fn generation_rate(format: FormatMix, n: usize, seed: u64) -> (Vec<String>, f64) {
    let mut generator =
        PlanGenerator::new(GenConfig::default().with_seed(seed).with_format(format));
    let start = Instant::now();
    let docs: Vec<String> = black_box(
        generator
            .generate(n)
            .into_iter()
            .map(|item| item.doc)
            .collect(),
    );
    let rate = n as f64 / start.elapsed().as_secs_f64();
    (docs, rate)
}

fn main() {
    let scale = bench_scale();

    // --- 1. generator throughput, per format -----------------------
    let n = ((20_000.0 * scale) as usize).max(2_000);
    let mut report = TableReport::new(
        "lantern-gen: fresh artifact emission (single thread)",
        &["format", "artifacts", "artifacts/s", "parse check"],
    );
    for (format, name) in [
        (FormatMix::PgJson, ArtifactFormat::PgJson.name()),
        (FormatMix::SqlServerXml, ArtifactFormat::SqlServerXml.name()),
    ] {
        let (docs, rate) = generation_rate(format, n, 0xBEEF);
        // Validity: every emitted artifact must parse with the real
        // parser for its format (outside the timed region).
        for doc in &docs {
            match format {
                FormatMix::PgJson => {
                    parse_pg_json_plan(doc).expect("generated PG JSON parses");
                }
                _ => {
                    parse_sqlserver_xml_plan(doc).expect("generated XML parses");
                }
            }
        }
        assert!(
            rate >= 10_000.0,
            "{name}: {rate:.0} artifacts/s is below the 10k/s floor"
        );
        report.row(&[
            name.to_string(),
            n.to_string(),
            format!("{rate:.0}"),
            format!("{} parsed", docs.len()),
        ]);
    }
    report.print();

    // --- 2. duplicate-rate soak curves against a live server -------
    let cached = Arc::new(CachedTranslator::new(
        RuleTranslator::new(default_mssql_store()),
        CacheConfig::default(),
    ));
    let handle = serve_with_cache(
        Arc::clone(&cached),
        Some(Arc::clone(&cached) as Arc<dyn CacheControl + Send + Sync>),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind ephemeral port");

    let requests = ((2_000.0 * scale) as usize).max(400);
    let mut report = TableReport::new(
        "soak: duplicate-rate sweep (4 clients, rule backend, warm-free cache)",
        &[
            "dup rate",
            "requests",
            "hit ratio",
            "p50 µs",
            "p99 µs",
            "req/s",
        ],
    );
    for (i, dup_rate) in [0.0, 0.5, 0.75, 0.9].into_iter().enumerate() {
        // Each sweep point starts from an empty cache so its hit ratio
        // reflects only its own schedule.
        let mut admin = HttpClient::connect(handle.addr()).expect("connect admin");
        assert_eq!(admin.post("/cache/clear", "").expect("clear").status, 200);
        drop(admin);

        let config = GenConfig::default()
            .with_seed(0xD0 + i as u64)
            .with_duplicate_rate(dup_rate);
        let docs: Vec<String> = PlanGenerator::new(config)
            .generate(requests)
            .into_iter()
            .map(|item| item.doc)
            .collect();
        let soak = run_soak(
            handle.addr(),
            &docs,
            &SoakConfig {
                clients: 4,
                pipeline: 1,
            },
        )
        .expect("soak runs");
        assert_eq!(
            soak.ok as usize, requests,
            "every generated artifact must narrate (statuses: {:?})",
            soak.statuses
        );
        let cache = soak.cache.expect("cached server reports a delta");
        assert!(
            (cache.hit_ratio - dup_rate).abs() <= 0.05,
            "hit ratio {:.3} drifted from configured duplicate rate {dup_rate}",
            cache.hit_ratio
        );
        report.row(&[
            format!("{dup_rate:.2}"),
            requests.to_string(),
            format!("{:.3}", cache.hit_ratio),
            soak.latency.p50_us.to_string(),
            soak.latency.p99_us.to_string(),
            format!("{:.0}", soak.throughput_rps),
        ]);
    }
    report.print();
    handle.shutdown().expect("clean shutdown");

    // --- 3. load shedding under a deliberately undersized pool -----
    //
    // One 2 ms-per-request worker behind a 2-slot dispatch queue,
    // hammered by 4 clients pipelining 8 requests each: the event
    // loop must shed the overflow with immediate 503s instead of
    // queueing it, and the requests it does accept must keep a sane
    // tail (shedding exists so accepted work doesn't collapse).
    // Event-path behaviour, so Unix only.
    #[cfg(unix)]
    {
        shed_scenario();
    }
}

#[cfg(unix)]
fn shed_scenario() {
    use lantern_core::{LanternError, NarrationRequest, NarrationResponse, Translator};
    use lantern_serve::serve;

    struct Slow(RuleTranslator);
    impl Translator for Slow {
        fn backend(&self) -> &str {
            "slow"
        }
        fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
            std::thread::sleep(std::time::Duration::from_millis(2));
            self.0.narrate(req)
        }
    }

    let handle = serve(
        Slow(RuleTranslator::new(default_mssql_store())),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");

    let docs: Vec<String> = PlanGenerator::new(
        GenConfig::default()
            .with_seed(0x5EED)
            .with_duplicate_rate(0.0),
    )
    .generate(256)
    .into_iter()
    .map(|item| item.doc)
    .collect();
    let soak = run_soak(
        handle.addr(),
        &docs,
        &SoakConfig {
            clients: 4,
            pipeline: 8,
        },
    )
    .expect("shed soak runs");

    let mut report = TableReport::new(
        "load shedding: 1 worker x 2 ms, queue cap 2, 4 clients x pipeline 8",
        &["requests", "ok", "shed (503)", "p50 µs", "p99 µs", "max µs"],
    );
    report.row(&[
        soak.requests.to_string(),
        soak.ok.to_string(),
        soak.shed.to_string(),
        soak.latency.p50_us.to_string(),
        soak.latency.p99_us.to_string(),
        soak.latency.max_us.to_string(),
    ]);
    report.print();

    assert!(
        soak.shed > 0,
        "an undersized pool must shed under pipelined load (statuses: {:?})",
        soak.statuses
    );
    assert_eq!(
        soak.server.shed_requests, soak.shed,
        "server shed counter must match the 503s clients observed"
    );
    assert!(soak.ok > 0, "shedding must not starve accepted requests");
    // Tail sanity: with ~32 requests in flight against a 2 ms worker,
    // an accepted request waits a few queue depths at most. A p99 in
    // the hundreds of milliseconds would mean overload was queued,
    // not shed.
    assert!(
        soak.latency.p99_us < 500_000,
        "p99 {} µs collapsed under overload",
        soak.latency.p99_us
    );
    handle.shutdown().expect("clean shutdown");
}
