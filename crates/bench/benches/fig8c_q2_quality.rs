//! Figure 8(c), survey Q2: "How well does LANTERN describe the query
//! plans?" Paper shape: 86% agree for RULE-LANTERN, 81.4% for
//! NEURAL-LANTERN (rule slightly ahead — hand-written rules are more
//! accurate than the neural decoder).

use lantern_bench::pipelines::studies::narration_streams;
use lantern_bench::{quick_config, tpch_workload, BenchContext, TableReport};
use lantern_neural::NeuralLantern;
use lantern_study::{q2_quality_survey, Population};
use lantern_text::token_edit_distance;

fn main() {
    let ctx = BenchContext::new();
    let (neural, _) = NeuralLantern::train_on(&ctx.tpch, &ctx.store, 40, quick_config(14, 9), 9);

    // Measure the neural system's token accuracy against the rule
    // ground truth on held-out acts (this is what drives Q2).
    let acts = ctx.imdb_test_acts(25);
    let mut total_tokens = 0usize;
    let mut wrong_tokens = 0usize;
    for act in &acts {
        let hyp = neural.model().translate_act_tagged(act, 4);
        let truth = act.output_tokens();
        wrong_tokens += token_edit_distance(&hyp, &truth);
        total_tokens += truth.len();
    }
    let neural_accuracy = (1.0 - wrong_tokens as f64 / total_tokens.max(1) as f64).clamp(0.0, 1.0);

    let rule_texts = ctx.rule_narrations(&ctx.tpch, &tpch_workload());
    let (_, neural_texts) = narration_streams(&ctx, &neural, 22);
    let mut pop = Population::sample(43, 17);
    let conditions = vec![
        ("RULE-LANTERN".to_string(), rule_texts, 1.0),
        ("NEURAL-LANTERN".to_string(), neural_texts, neural_accuracy),
    ];
    let report = q2_quality_survey(&mut pop, &conditions);

    let mut t = TableReport::new(
        "Figure 8(c): Q2 description quality (Likert 1-5, 43 learners)",
        &["System", "1", "2", "3", "4", "5", ">3", "Paper >3"],
    );
    for ((label, hist), paper) in report.rows.iter().zip(["86.0%", "81.4%"]) {
        let r = hist.row();
        t.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            format!("{:.1}%", hist.fraction_above_3() * 100.0),
            paper.to_string(),
        ]);
    }
    t.print();
    println!(
        "measured neural token accuracy: {:.3}  (rule = 1.0 by construction)",
        neural_accuracy
    );
    let rule = report.row("RULE-LANTERN").unwrap().fraction_above_3();
    let neural_f = report.row("NEURAL-LANTERN").unwrap().fraction_above_3();
    println!("shape check: rule ({rule:.2}) >= neural ({neural_f:.2}), both high");
}
