//! Ablation: beam-width sweep for QEP2Seq decoding (the paper fixes
//! beam 4). Reports test BLEU and decode latency per width.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::Qep2Seq;
use std::time::Instant;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(15, true);
    let mut model = Qep2Seq::new(&ts, quick_config(12, 21));
    model.train(&ts);
    let acts = ctx.imdb_test_acts(15);

    let mut t = TableReport::new(
        "Ablation: beam width vs test BLEU and latency",
        &["Beam", "BLEU", "Avg decode (ms)"],
    );
    let mut bleus = Vec::new();
    for beam in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let bleu = model.test_bleu(&acts, beam);
        let avg_ms = start.elapsed().as_secs_f64() * 1000.0 / acts.len() as f64;
        bleus.push(bleu);
        t.row(&[
            beam.to_string(),
            format!("{bleu:.2}"),
            format!("{avg_ms:.2}"),
        ]);
    }
    t.print();
    println!("expected: BLEU saturates around the paper's beam 4; latency grows with width");
}
