//! Figure 9(a): Q2 quality responses across the pre-training variants.
//! Paper shape: no significant differences — given the constrained
//! input/output, large pre-trained models have little room to improve
//! *perceived* quality even though BLEU differs.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::registry::TABLE5_VARIANTS;
use lantern_study::{q2_quality_survey, Population};
use lantern_text::token_edit_distance;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(15, true);
    let test_acts = ctx.imdb_test_acts(15);

    let mut conditions = Vec::new();
    for variant in TABLE5_VARIANTS.iter().take(5) {
        let mut model = variant.build(&ts, quick_config(8, 12));
        model.train(&ts);
        // Accuracy measured on held-out acts.
        let mut wrong = 0usize;
        let mut total = 0usize;
        let mut texts = Vec::new();
        for act in &test_acts {
            let hyp = model.translate_act_tagged(act, 4);
            wrong += token_edit_distance(&hyp, &act.output_tokens());
            total += act.output_tokens().len();
            texts.push(model.translate_act(act, 4));
        }
        let acc = (1.0 - wrong as f64 / total.max(1) as f64).clamp(0.0, 1.0);
        conditions.push((variant.name.to_string(), texts, acc));
    }

    let mut pop = Population::sample(43, 19);
    let report = q2_quality_survey(&mut pop, &conditions);
    let mut t = TableReport::new(
        "Figure 9(a): Q2 responses across pre-training variants",
        &["Method", "1", "2", "3", "4", "5", ">3"],
    );
    for (label, hist) in &report.rows {
        let r = hist.row();
        t.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            format!("{:.1}%", hist.fraction_above_3() * 100.0),
        ]);
    }
    t.print();
    println!("paper shape: no significant perceived-quality gap between embedding variants");
}
