//! Exp 5: correctness of 100 sampled NEURAL-LANTERN outputs, checked
//! token-by-token against the rule ground truth. Paper: 83 exactly
//! correct, 13 with one wrong token, 4 with 6–9 wrong tokens.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::Qep2Seq;
use lantern_text::token_edit_distance;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(30, true);
    let mut model = Qep2Seq::new(&ts, quick_config(16, 88));
    model.train(&ts);

    let acts = ctx.imdb_test_acts(40);
    let sample: Vec<_> = acts.iter().take(100).collect();
    let mut exact = 0usize;
    let mut one_wrong = 0usize;
    let mut few_wrong = 0usize; // 2..=9
    let mut many_wrong = 0usize;
    for act in &sample {
        let hyp = model.translate_act_tagged(act, 4);
        let d = token_edit_distance(&hyp, &act.output_tokens());
        match d {
            0 => exact += 1,
            1 => one_wrong += 1,
            2..=9 => few_wrong += 1,
            _ => many_wrong += 1,
        }
    }
    let n = sample.len();
    let mut t = TableReport::new(
        "Exp 5: errors in NEURAL-LANTERN output (tagged-level, vs rule ground truth)",
        &["Category", "Ours", "Paper (of 100)"],
    );
    t.row(&["sampled outputs", &n.to_string(), "100"]);
    t.row(&["exactly correct", &exact.to_string(), "83"]);
    t.row(&["one wrong token", &one_wrong.to_string(), "13"]);
    t.row(&["2-9 wrong tokens", &few_wrong.to_string(), "4"]);
    t.row(&["10+ wrong tokens", &many_wrong.to_string(), "0"]);
    t.print();
    assert!(
        exact + one_wrong > n / 2,
        "most outputs must be correct or near-correct: {exact}+{one_wrong} of {n}"
    );
    println!("shape check: the bulk of outputs are exact or one-token-off  ✓");
}
