//! Table 3: statistics about the LSTM layer — parameter counts for the
//! four embedding variants at paper scale (hidden 256, input vocab 36,
//! output vocab 62). Encoder/decoder recurrent counts reproduce the
//! paper exactly; totals land within 10% (the paper's attention/output
//! head sizes are unspecified — see EXPERIMENTS.md).

use lantern_bench::TableReport;
use lantern_nn::params::{count_parameters, table3_configs};

fn main() {
    let paper: &[(&str, usize, usize)] = &[
        ("QEP2Seq+Word2Vec", 920_393, 837_632),
        ("QEP2Seq+GloVe", 993_901, 907_264),
        ("QEP2Seq+BERT", 1_716_009, 1_591_296),
        ("QEP2Seq+ELMo", 1_992_745, 1_853_440),
    ];
    let mut t = TableReport::new(
        "Table 3: LSTM layer statistics",
        &[
            "Method",
            "Embed dim",
            "Total (ours)",
            "Total (paper)",
            "Recurrent enc+dec (ours)",
            "Recurrent (paper)",
            "Enc recurrent",
            "Dec recurrent",
        ],
    );
    for ((name, config, dim), (pname, ptotal, precurrent)) in table3_configs().iter().zip(paper) {
        assert_eq!(name, pname);
        let r = count_parameters(name, config, *dim);
        assert_eq!(r.encoder_recurrent, 279_552, "paper encoder count");
        assert_eq!(
            r.recurrent_total(),
            *precurrent,
            "recurrent totals must match the paper exactly"
        );
        t.row(&[
            name.clone(),
            dim.to_string(),
            r.total.to_string(),
            ptotal.to_string(),
            r.recurrent_total().to_string(),
            precurrent.to_string(),
            r.encoder_recurrent.to_string(),
            r.decoder_recurrent.to_string(),
        ]);
    }
    t.print();
    println!("recurrent-connection counts match the paper exactly (279,552 encoder rows)  ✓");
}
