//! Figure 6(a): validation loss with vs without paraphrase-diversified
//! training data. Paper shape: the diversified set reaches a clearly
//! lower validation loss.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::Qep2Seq;

fn main() {
    let ctx = BenchContext::new();
    let plain = ctx.paper_training_set(20, false);
    let diversified = ctx.paper_training_set(20, true);

    let epochs = 10;
    let mut m_plain = Qep2Seq::new(&plain, quick_config(epochs, 1));
    let r_plain = m_plain.train(&plain);
    let mut m_div = Qep2Seq::new(&diversified, quick_config(epochs, 1));
    let r_div = m_div.train(&diversified);

    let mut t = TableReport::new(
        "Figure 6(a): validation loss, diversified vs plain training data",
        &[
            "Epoch",
            "Val loss (plain)",
            "Val loss (diversifying translation)",
        ],
    );
    for (a, b) in r_plain.epochs.iter().zip(&r_div.epochs) {
        t.row(&[
            a.epoch.to_string(),
            format!("{:.4}", a.val_loss),
            format!("{:.4}", b.val_loss),
        ]);
    }
    t.print();
    let best_plain = r_plain
        .epochs
        .iter()
        .map(|e| e.val_loss)
        .fold(f32::INFINITY, f32::min);
    let best_div = r_div
        .epochs
        .iter()
        .map(|e| e.val_loss)
        .fold(f32::INFINITY, f32::min);
    println!(
        "best val loss: plain {best_plain:.4} vs diversified {best_div:.4}  \
         (paper shape: paraphrasing reduces the loss; samples {} -> {})",
        plain.examples.len(),
        diversified.examples.len()
    );
}
