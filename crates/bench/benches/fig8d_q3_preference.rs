//! Figure 8(d), survey Q3: most preferred plan format. Paper: RULE-
//! LANTERN 30.23%, NEURAL-LANTERN 30.23%, visual tree 27.91%, JSON
//! 11.63%.

use lantern_bench::pipelines::studies::narration_streams;
use lantern_bench::{quick_config, tpch_workload, BenchContext, TableReport};
use lantern_neural::NeuralLantern;
use lantern_study::{q3_preference_survey, Population};

fn main() {
    let ctx = BenchContext::new();
    let (neural, _) = NeuralLantern::train_on(&ctx.tpch, &ctx.store, 30, quick_config(12, 10), 10);
    let rule_texts = ctx.rule_narrations(&ctx.tpch, &tpch_workload());
    let (_, neural_texts) = narration_streams(&ctx, &neural, 22);

    let mut pop = Population::sample(43, 31);
    let counts = q3_preference_survey(&mut pop, &rule_texts, &neural_texts);
    let labels = ["JSON", "Visual tree", "RULE-LANTERN", "NEURAL-LANTERN"];
    let paper = ["11.63%", "27.91%", "30.23%", "30.23%"];
    let mut t = TableReport::new(
        "Figure 8(d): Q3 most-preferred format (43 learners)",
        &["Format", "Votes", "Share", "Paper"],
    );
    for i in 0..4 {
        t.row(&[
            labels[i].to_string(),
            counts[i].to_string(),
            format!("{:.1}%", 100.0 * counts[i] as f64 / 43.0),
            paper[i].to_string(),
        ]);
    }
    t.print();
    assert!(
        counts[2] + counts[3] > counts[0],
        "NL formats must beat JSON"
    );
    println!("shape check: LANTERN variants lead, JSON last  ✓");
}
