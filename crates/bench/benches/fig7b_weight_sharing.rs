//! Figure 7(b): sharing vs not sharing the encoder/decoder recurrent
//! weights. Paper shape: comparable performance for models with
//! pre-trained embeddings.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_embed::{builtin_english_corpus, Embedder, GloveTrainer, Word2VecTrainer};
use lantern_neural::Qep2Seq;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(15, true);
    let epochs = 8;

    let glove = GloveTrainer {
        dim: 16,
        epochs: 8,
        ..Default::default()
    }
    .train(&builtin_english_corpus(), 4);
    let w2v = Word2VecTrainer {
        dim: 16,
        epochs: 4,
        ..Default::default()
    }
    .train(&builtin_english_corpus(), 4);

    let mut t = TableReport::new(
        "Figure 7(b): weight sharing between encoder and decoder",
        &[
            "Method",
            "Best val accuracy (not shared)",
            "Best val accuracy (shared)",
        ],
    );
    let mut run = |name: &str, emb: Option<&lantern_embed::Embedding>| {
        let mut best = [0.0f64; 2];
        for (i, share) in [false, true].into_iter().enumerate() {
            let mut cfg = quick_config(epochs, 5);
            cfg.share_recurrent_weights = share;
            let mut model = match emb {
                Some(e) => Qep2Seq::with_embedding(&ts, cfg, e),
                None => Qep2Seq::new(&ts, cfg),
            };
            let r = model.train(&ts);
            best[i] = r.epochs.iter().map(|e| e.val_accuracy).fold(0.0, f64::max);
        }
        t.row(&[
            name.to_string(),
            format!("{:.3}", best[0]),
            format!("{:.3}", best[1]),
        ]);
        best
    };
    run("QEP2Seq", None);
    run("QEP2Seq+Word2Vec", Some(&w2v));
    run("QEP2Seq+GloVe", Some(&glove));
    t.print();
    println!("paper shape: shared vs non-shared are comparable with pre-trained embeddings");
}
