//! Ablation: exhaustive DP join ordering vs the greedy left-deep
//! baseline, over the multi-join TPC-H workloads. DP can never cost
//! more; the bench reports where (and by how much) it wins.

use lantern_bench::{tpch_workload, BenchContext, TableReport};
use lantern_engine::Planner;
use lantern_sql::parse_sql;

fn main() {
    let ctx = BenchContext::new();
    let dp = Planner::new(&ctx.tpch);
    let mut greedy = Planner::new(&ctx.tpch);
    greedy.greedy_joins = true;

    let mut t = TableReport::new(
        "Ablation: DP join ordering vs greedy (join cost, relative units)",
        &["Workload", "#Tables", "DP cost", "Greedy cost", "Greedy/DP"],
    );
    let mut wins = 0usize;
    let mut multi = 0usize;
    for (i, sql) in tpch_workload().iter().enumerate() {
        let q = parse_sql(sql).unwrap();
        if q.all_tables().count() < 3 {
            continue;
        }
        multi += 1;
        let p_dp = dp.plan(&q).unwrap();
        let p_gr = greedy.plan(&q).unwrap();
        let (c_dp, c_gr) = (p_dp.join_root.cost(), p_gr.join_root.cost());
        assert!(c_dp <= c_gr + 1e-6, "DP must never lose");
        if c_gr > c_dp * 1.001 {
            wins += 1;
        }
        t.row(&[
            format!("Q{}", i + 1),
            q.all_tables().count().to_string(),
            format!("{c_dp:.0}"),
            format!("{c_gr:.0}"),
            format!("{:.3}", c_gr / c_dp),
        ]);
    }
    t.print();
    println!("DP strictly cheaper on {wins} of {multi} multi-join workloads");
}
