//! Table 4: diversity among the training samples, measured with
//! Self-BLEU over paraphrase groups (lower = more diverse). Paper:
//! without paraphrasing 1.0; tools individually 0.309/0.603/0.502; all
//! three combined 0.482.

use lantern_bench::{BenchContext, TableReport};
use lantern_paraphrase::engines::is_valid_paraphrase;
use lantern_paraphrase::{
    AggressiveParaphraser, Paraphraser, RestructureParaphraser, SynonymParaphraser,
};
use lantern_text::{self_bleu, tokenize, BleuConfig};

fn main() {
    let ctx = BenchContext::new();
    // The rule-generated samples (paper: 544 TPC-H + 608 SDSS = 1152).
    let ts = ctx.paper_training_set(0, false);
    let samples: Vec<String> = ts
        .examples
        .iter()
        .map(|e| e.output_tokens.join(" "))
        .collect();
    println!(
        "rule-generated samples: {} (paper: 1152 = 544 TPC-H + 608 SDSS)",
        samples.len()
    );

    let score_with = |engines: &[&dyn Paraphraser]| -> (f64, f64) {
        let mut total = 0.0;
        let mut group_sizes = 0usize;
        for s in &samples {
            let mut group = vec![s.clone()];
            for e in engines {
                if let Some(p) = e.paraphrase(s, 0) {
                    if !group.contains(&p) && is_valid_paraphrase(s, &p) {
                        group.push(p);
                    }
                }
            }
            group_sizes += group.len();
            let toks: Vec<Vec<String>> = group.iter().map(|x| tokenize(x)).collect();
            total += self_bleu(&toks, BleuConfig::default());
        }
        (
            total / samples.len() as f64,
            group_sizes as f64 / samples.len() as f64,
        )
    };

    let mut t = TableReport::new(
        "Table 4: diversity among training samples (Self-BLEU; lower = more diverse)",
        &[
            "Approach",
            "Self-BLEU (ours)",
            "Self-BLEU (paper)",
            "#Samples/group (ours)",
            "(paper)",
        ],
    );
    t.row(&["Without paraphrasing", "1.000", "1.0", "1.0", "1"]);
    let rows: Vec<(&str, &[&dyn Paraphraser], &str, &str)> = vec![
        (
            "paraphrasing with [10]",
            &[&AggressiveParaphraser],
            "0.309",
            "2",
        ),
        (
            "paraphrasing with [9]",
            &[&SynonymParaphraser],
            "0.603",
            "2",
        ),
        (
            "paraphrasing with [8]",
            &[&RestructureParaphraser],
            "0.502",
            "2",
        ),
        (
            "paraphrasing with [8-10]",
            &[
                &SynonymParaphraser,
                &RestructureParaphraser,
                &AggressiveParaphraser,
            ],
            "0.482",
            "4",
        ),
    ];
    let mut measured = Vec::new();
    for (label, engines, paper_sb, paper_n) in rows {
        let (sb, avg_group) = score_with(engines);
        measured.push((label, sb));
        t.row(&[
            label.to_string(),
            format!("{sb:.3}"),
            paper_sb.to_string(),
            format!("{avg_group:.2}"),
            paper_n.to_string(),
        ]);
    }
    t.print();
    // Shape: every paraphrasing row is well below 1.0, and combining
    // all three lands between the best and worst single tool.
    for (label, sb) in &measured {
        assert!(*sb < 0.95, "{label}: {sb}");
    }
    println!("shape check: paraphrasing is beneficial w.r.t. diversity  ✓");
}
