//! Table 7 / US 3: boredom index distributions after reading 20+
//! narrations per system. Paper: rule-lantern bores 15/43 learners,
//! neural-lantern only 4/43; NEURON is the most boring; the combined
//! LANTERN (rule + neural on frequent operators) matches neural.

use lantern_bench::pipelines::studies::narration_streams;
use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_engine::Planner;
use lantern_neural::NeuralLantern;
use lantern_neuron::Neuron;
use lantern_study::{boredom_study, mixed_stream_study, Population};

fn main() {
    let ctx = BenchContext::new();
    let (neural, _) = NeuralLantern::train_on(&ctx.imdb, &ctx.store, 40, quick_config(14, 66), 66);
    let (rule_stream, neural_stream) = narration_streams(&ctx, &neural, 20);

    // NEURON stream over the same similar-shaped queries.
    let planner = Planner::new(&ctx.imdb);
    let neuron = Neuron::new();
    let neuron_stream: Vec<String> =
        lantern_bench::pipelines::studies::similar_plan_queries(&ctx, 20)
            .iter()
            .filter_map(|q| planner.plan(q).ok())
            .filter_map(|p| neuron.describe_text(&p.tree()).ok())
            .collect();

    // Combined LANTERN: rule by default, switching to neural once an
    // operator has been seen more than 5 times (the paper's frequency
    // threshold) — i.e. the first five narrations are rule, the rest
    // neural.
    let lantern_stream: Vec<String> = rule_stream
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i >= 5 && i - 5 < neural_stream.len() {
                neural_stream[i - 5].clone()
            } else {
                r.clone()
            }
        })
        .collect();

    let mut pop = Population::sample(43, 77);
    let conditions = vec![
        ("rule-lantern".to_string(), rule_stream.clone()),
        ("neural-lantern".to_string(), neural_stream.clone()),
        ("neuron".to_string(), neuron_stream),
        ("lantern".to_string(), lantern_stream),
    ];
    let report = boredom_study(&mut pop, &conditions);

    let paper = [
        ("rule-lantern", [2, 7, 19, 10, 5]),
        ("neural-lantern", [6, 11, 22, 3, 1]),
        ("neuron", [2, 8, 16, 11, 6]),
        ("lantern", [6, 12, 21, 2, 2]),
    ];
    let mut t = TableReport::new(
        "Table 7: boredom index (1 = not boring .. 5 = extremely boring)",
        &["Method", "1", "2", "3", "4", "5", "bored (>3)", "Paper row"],
    );
    for ((label, hist), (_, prow)) in report.rows.iter().zip(paper) {
        let r = hist.row();
        t.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            (r[3] + r[4]).to_string(),
            format!("{prow:?}"),
        ]);
    }
    t.print();
    // The robust claim is the ordering of mean boredom; tail counts
    // (>3) depend on absolute calibration.
    let mean = |l: &str| report.row(l).unwrap().mean();
    assert!(
        mean("rule-lantern") > mean("neural-lantern"),
        "neural must alleviate boredom: rule {} vs neural {}",
        mean("rule-lantern"),
        mean("neural-lantern")
    );
    println!(
        "mean boredom: rule {:.2}, neuron {:.2} > neural {:.2}, lantern {:.2}  ✓",
        mean("rule-lantern"),
        mean("neuron"),
        mean("neural-lantern"),
        mean("lantern")
    );

    // US 3 mixed-stream experiment.
    let mut stream = Vec::new();
    let mut ni = 0usize;
    for (i, r) in rule_stream.iter().enumerate() {
        stream.push((r.clone(), false));
        if i % 3 == 2 && ni < neural_stream.len() {
            stream.push((neural_stream[ni].clone(), true));
            ni += 1;
        }
    }
    let mut pop2 = Population::sample(43, 79);
    let ((rb, ri), (nb, niq)) = mixed_stream_study(&mut pop2, &stream);
    println!(
        "\nUS 3 mixed stream: rule marked boring {rb} / interesting {ri}; \
         neural marked boring {nb} / interesting {niq}"
    );
    println!("paper shape: rule items get boring marks; neural items arouse interest");
}
