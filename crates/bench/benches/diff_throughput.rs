//! Plan-diff throughput on the synthetic workload: `lantern-gen`
//! plans, each paired with one injected mutation of every kind, pushed
//! through (a) the bare structural engine, (b) diff + narration, and
//! (c) the full document path (`PlanSource` resolution + diff +
//! narration — what one `/narrate/diff` request costs after HTTP).
//!
//! Run with: `cargo bench --bench diff_throughput`
//! (`LANTERN_BENCH_SCALE` scales the iteration count.)

use lantern_bench::{bench_scale, TableReport};
use lantern_core::{DiffRequest, DiffTranslator};
use lantern_diff::{diff_plans, RuleDiffTranslator};
use lantern_gen::{ArtifactFormat, GenConfig, Mutation, PlanGenerator};
use lantern_plan::PlanTree;
use lantern_pool::default_mssql_store;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn main() {
    let mut generator = PlanGenerator::new(
        GenConfig::default()
            .with_seed(4242)
            .with_ops(3, 9)
            .with_serial_stamps(false),
    );

    // 64 base plans; every applicable mutation of every kind, so the
    // workload mixes join swaps, estimate jitter, and filter tweaks.
    let mut pairs: Vec<(PlanTree, PlanTree)> = Vec::new();
    while pairs.len() < 64 {
        let base = generator.next_tree();
        for kind in Mutation::ALL {
            if let Some(mutant) = generator.mutate_as(&base, kind) {
                pairs.push((base.clone(), mutant));
            }
        }
    }
    let docs: Vec<(String, String)> = pairs
        .iter()
        .map(|(base, alt)| {
            (
                PlanGenerator::render(base, ArtifactFormat::PgJson),
                PlanGenerator::render(alt, ArtifactFormat::PgJson),
            )
        })
        .collect();

    let translator = RuleDiffTranslator::new(default_mssql_store());
    let iters = ((200.0 * bench_scale()) as usize).max(20);

    // (a) structural diff alone.
    let t0 = Instant::now();
    let mut edits = 0usize;
    for _ in 0..iters {
        for (base, alt) in &pairs {
            edits += black_box(diff_plans(base, alt)).edits.len();
        }
    }
    let engine = t0.elapsed();
    assert!(edits > 0, "the workload must produce edits");

    // (b) diff + narration over parsed trees.
    let t0 = Instant::now();
    for _ in 0..iters {
        for (base, alt) in &pairs {
            black_box(translator.narrate_trees(base, alt, None));
        }
    }
    let narrated = t0.elapsed();

    // (c) full document path: format detection + parse + diff +
    // narration, per request.
    let t0 = Instant::now();
    for _ in 0..iters {
        for (base, alt) in &docs {
            let req = DiffRequest::auto(base.as_str(), alt.as_str()).expect("detects");
            black_box(translator.narrate_diff(&req).expect("diffs"));
        }
    }
    let documents = t0.elapsed();

    let per = pairs.len() * iters;
    let us = |d: Duration| d.as_secs_f64() * 1e6 / per as f64;
    let rate = |d: Duration| per as f64 / d.as_secs_f64();
    let mut report = TableReport::new(
        &format!(
            "Plan-diff throughput ({} generated plan pairs, {:.1} edits/pair)",
            pairs.len(),
            edits as f64 / per as f64
        ),
        &["path", "µs/diff", "diffs/s"],
    );
    for (name, d) in [
        ("structural diff only", engine),
        ("diff + narration", narrated),
        ("documents end to end", documents),
    ] {
        report.row(&[
            name.to_string(),
            format!("{:.1}", us(d)),
            format!("{:.0}", rate(d)),
        ]);
    }
    report.print();
}
