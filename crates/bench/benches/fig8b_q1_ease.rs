//! Figure 8(b), survey Q1: "How easy is it to understand the query
//! plan presented using each approach?" Paper shape: both LANTERN
//! variants have ~58% of ratings above 3, visual tree ~49%, JSON ~28%.

use lantern_bench::pipelines::studies::narration_streams;
use lantern_bench::{quick_config, tpch_workload, BenchContext, TableReport};
use lantern_neural::NeuralLantern;
use lantern_study::{q1_ease_survey, Population};

fn main() {
    let ctx = BenchContext::new();
    let (neural, _) = NeuralLantern::train_on(&ctx.tpch, &ctx.store, 30, quick_config(12, 8), 8);
    let rule_texts = ctx.rule_narrations(&ctx.tpch, &tpch_workload());
    let (_, neural_texts) = narration_streams(&ctx, &neural, 22);

    let mut pop = Population::sample(43, 42);
    let report = q1_ease_survey(&mut pop, &rule_texts, &neural_texts);
    let mut t = TableReport::new(
        "Figure 8(b): Q1 ease of understanding (Likert 1-5, 43 learners)",
        &["Format", "1", "2", "3", "4", "5", ">3", "Paper >3"],
    );
    let paper = [
        ("JSON", "27.9%"),
        ("Visual tree", "48.8%"),
        ("RULE-LANTERN", "58.1%"),
        ("NEURAL-LANTERN", "58.1%"),
    ];
    for ((label, hist), (_, paper_pct)) in report.rows.iter().zip(paper) {
        let r = hist.row();
        t.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            format!("{:.1}%", hist.fraction_above_3() * 100.0),
            paper_pct.to_string(),
        ]);
    }
    t.print();
    let above = |l: &str| report.row(l).unwrap().fraction_above_3();
    assert!(above("RULE-LANTERN") > above("JSON"));
    println!("shape check: LANTERN formats easiest, JSON hardest  ✓");
}
