//! Single-request vs batched narration throughput through the unified
//! `Translator` API, on an 8-query TPC-H workload.
//!
//! Three paths are compared, all delivering rendered narration text:
//!
//! * **legacy per-node locking** — the pre-snapshot behaviour: every
//!   plan node takes the store's `RwLock` and linearly scans the
//!   `POperators`/`PDesc` relations;
//! * **narrate** — the unified single-request API: each call runs
//!   against the store's version-cached indexed snapshot (assembled
//!   once per catalog generation, lock-free O(1) lookups with
//!   precomputed templates);
//! * **narrate_batch** — one snapshot pinned for the whole batch,
//!   fanned out across `available_parallelism` worker threads.
//!
//! On a single core the batch path tracks the single-request path
//! (both are snapshot-backed); on multi-core hosts the fan-out
//! multiplies batch throughput by roughly the worker count.
//!
//! Run with: `cargo bench --bench batch_throughput`
//! (`LANTERN_BENCH_SCALE` scales the iteration count.)

use lantern_bench::{bench_scale, tpch_workload, BenchContext, TableReport};
use lantern_core::{narrate_with_lookup, NarrationRequest, RuleTranslator, Translator};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let ctx = BenchContext::new();
    let workload: Vec<String> = tpch_workload().into_iter().take(8).collect();
    let reqs: Vec<NarrationRequest> = ctx.narration_requests(&ctx.tpch, &workload);
    assert_eq!(reqs.len(), 8, "all 8 TPC-H queries must plan");
    let trees: Vec<_> = reqs
        .iter()
        .map(|r| r.resolve_tree().expect("tree request"))
        .collect();

    let rule = RuleTranslator::new(ctx.store.clone());
    let iters = ((400.0 * bench_scale()) as usize).max(50);

    // Warm-up (page in code paths, prime the snapshot cache).
    for _ in 0..10 {
        black_box(rule.narrate_batch(&reqs));
        for r in &reqs {
            black_box(rule.narrate(r).unwrap());
        }
    }

    // Legacy path: per-node store locking (pre-snapshot behaviour),
    // approximated by narrating against the live store directly. The
    // text is rendered too so every row delivers the same artifact.
    let t0 = Instant::now();
    for _ in 0..iters {
        for tree in &trees {
            black_box(narrate_with_lookup(tree, &ctx.store).unwrap().text());
        }
    }
    let legacy = t0.elapsed();

    // Single-request API over the version-cached snapshot. Responses
    // are collected like the batch API collects them, so both rows
    // deliver the same artifact (a Vec of 8 responses).
    let t0 = Instant::now();
    for _ in 0..iters {
        let out: Vec<_> = reqs.iter().map(|r| rule.narrate(r)).collect();
        black_box(out);
    }
    let single = t0.elapsed();

    // Batched API: one pinned snapshot, threaded fan-out.
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(rule.narrate_batch(&reqs));
    }
    let batched = t0.elapsed();

    let n = (iters * reqs.len()) as f64;
    let thr = |elapsed: std::time::Duration| n / elapsed.as_secs_f64();

    let mut report = TableReport::new(
        "Narration throughput, 8-query TPC-H workload (narrations/s)",
        &["path", "narrations/s", "vs legacy"],
    );
    report.row(&[
        "legacy per-node locking".to_string(),
        format!("{:.0}", thr(legacy)),
        "1.00x".to_string(),
    ]);
    report.row(&[
        "narrate (cached snapshot)".to_string(),
        format!("{:.0}", thr(single)),
        format!("{:.2}x", legacy.as_secs_f64() / single.as_secs_f64()),
    ]);
    report.row(&[
        "narrate_batch (pinned snapshot + fan-out)".to_string(),
        format!("{:.0}", thr(batched)),
        format!("{:.2}x", legacy.as_secs_f64() / batched.as_secs_f64()),
    ]);
    report.print();
    println!(
        "batch speedup over sequential single requests: {:.2}x ({} worker thread(s))",
        single.as_secs_f64() / batched.as_secs_f64(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
}
