//! Figure 9(c) / US 5: LANTERN vs NEURON. NEURON's hard-coded
//! PostgreSQL rules cannot translate SQL Server plans, so none of the
//! SDSS workloads succeed; 41 of 43 volunteers scored it below 3.

use lantern_bench::{sdss_workload, tpch_workload, BenchContext, TableReport};
use lantern_core::RuleLantern;
use lantern_engine::{ExplainFormat, Planner};
use lantern_neuron::Neuron;
use lantern_plan::parse_sqlserver_xml_plan;
use lantern_sql::parse_sql;
use lantern_study::{q2_quality_survey, Population};

fn main() {
    let ctx = BenchContext::new();
    let planner_tpch = Planner::new(&ctx.tpch);
    let planner_sdss = Planner::new(&ctx.sdss);
    let rule = RuleLantern::new(&ctx.store);
    let neuron = Neuron::new();

    // TPC-H (PostgreSQL source): both systems translate.
    let mut lantern_ok = 0;
    let mut neuron_ok = 0;
    let mut lantern_texts = Vec::new();
    let mut neuron_texts = Vec::new();
    for sql in tpch_workload() {
        let plan = planner_tpch.plan(&parse_sql(&sql).unwrap()).unwrap();
        let tree = plan.tree();
        if let Ok(n) = rule.narrate(&tree) {
            lantern_ok += 1;
            lantern_texts.push(n.text());
        }
        if let Ok(s) = neuron.describe_text(&tree) {
            neuron_ok += 1;
            neuron_texts.push(s);
        }
    }
    // SDSS via SQL Server showplans: NEURON fails on every plan.
    let mut lantern_sdss_ok = 0;
    let mut neuron_sdss_ok = 0;
    for sql in sdss_workload() {
        let plan = planner_sdss.plan(&parse_sql(&sql).unwrap()).unwrap();
        let xml = lantern_engine::explain::explain(&plan, ExplainFormat::SqlServerXml);
        let mssql_tree = parse_sqlserver_xml_plan(&xml).unwrap();
        if rule.narrate(&mssql_tree).is_ok() {
            lantern_sdss_ok += 1;
        }
        if neuron.describe(&mssql_tree).is_ok() {
            neuron_sdss_ok += 1;
        }
    }

    let mut t = TableReport::new(
        "US 5: workload translation success (LANTERN vs NEURON)",
        &["Workload", "LANTERN", "NEURON", "Paper"],
    );
    t.row(&[
        "TPC-H (PostgreSQL)",
        &format!("{lantern_ok}/22"),
        &format!("{neuron_ok}/22"),
        "both translate",
    ]);
    t.row(&[
        "SDSS (SQL Server)",
        &format!("{lantern_sdss_ok}/71"),
        &format!("{neuron_sdss_ok}/71"),
        "NEURON: none",
    ]);
    t.print();
    assert_eq!(
        neuron_sdss_ok, 0,
        "NEURON must fail on all SQL Server plans"
    );
    assert_eq!(
        lantern_sdss_ok, 71,
        "LANTERN must translate all SQL Server plans"
    );

    // Perceived quality: NEURON's SDSS failure collapses its rating.
    let neuron_accuracy = (neuron_ok + neuron_sdss_ok) as f64 / 93.0;
    let lantern_accuracy = (lantern_ok + lantern_sdss_ok) as f64 / 93.0;
    let mut pop = Population::sample(43, 29);
    let conditions = vec![
        ("LANTERN".to_string(), lantern_texts, lantern_accuracy),
        ("NEURON".to_string(), neuron_texts, neuron_accuracy),
    ];
    let report = q2_quality_survey(&mut pop, &conditions);
    let mut t2 = TableReport::new(
        "Figure 9(c): perceived quality across both workloads",
        &["System", "1", "2", "3", "4", "5", "<3 count", "Paper"],
    );
    for ((label, hist), paper) in report.rows.iter().zip(["high", "41/43 below 3"]) {
        let r = hist.row();
        t2.row(&[
            label.clone(),
            r[0].to_string(),
            r[1].to_string(),
            r[2].to_string(),
            r[3].to_string(),
            r[4].to_string(),
            (r[0] + r[1]).to_string(),
            paper.to_string(),
        ]);
    }
    t2.print();
    println!("shape check: NEURON cannot serve SQL Server learners; LANTERN can  ✓");
}
