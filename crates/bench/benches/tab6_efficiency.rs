//! Table 6: efficiency — total training time, per-epoch time, SQL
//! generation for 1000 IMDB queries, and average per-plan response
//! times of NEURAL-LANTERN vs RULE-LANTERN. Absolute numbers differ
//! from the paper's GPU server; the *ordering* (rule ≪ neural ≪ 1s)
//! must hold.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_core::RuleLantern;
use lantern_engine::{Planner, QueryGenConfig, RandomQueryGen};
use lantern_neural::{NeuralLantern, Qep2Seq};
use std::time::Instant;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(20, true);

    // Training timings.
    let start = Instant::now();
    let mut model = Qep2Seq::new(&ts, quick_config(8, 55));
    let report = model.train(&ts);
    let train_total = start.elapsed().as_secs_f64();
    let per_epoch = train_total / report.epochs.len().max(1) as f64;

    // SQL generation: 1000 IMDB queries (paper: 0.77 s).
    let start = Instant::now();
    let mut gen = RandomQueryGen::new(&ctx.imdb, 5, QueryGenConfig::default());
    let queries = gen.generate(1000);
    let sqlgen = start.elapsed().as_secs_f64();
    assert_eq!(queries.len(), 1000);

    // Response times over 30 plans.
    let planner = Planner::new(&ctx.imdb);
    let rule = RuleLantern::new(&ctx.store);
    let neural = NeuralLantern::from_model(model, ctx.store.clone());
    let trees: Vec<_> = queries
        .iter()
        .take(30)
        .filter_map(|q| planner.plan(q).ok().map(|p| p.tree()))
        .collect();
    let start = Instant::now();
    for tree in &trees {
        let _ = rule.narrate(tree).expect("rule narrates");
    }
    let rule_avg = start.elapsed().as_secs_f64() / trees.len() as f64;
    let start = Instant::now();
    for tree in &trees {
        let _ = neural.describe(tree).expect("neural translates");
    }
    let neural_avg = start.elapsed().as_secs_f64() / trees.len() as f64;

    let mut t = TableReport::new("Table 6: efficiency (seconds)", &["Step", "Ours", "Paper"]);
    t.row(&["Training (total)", &format!("{train_total:.2}"), "825.60"]);
    t.row(&[
        "Training per epoch",
        &format!("{per_epoch:.2}"),
        "16.51 [18.22]",
    ]);
    t.row(&[
        "SQL generation (1000 IMDB queries)",
        &format!("{sqlgen:.3}"),
        "0.77",
    ]);
    t.row(&[
        "NEURAL-LANTERN avg response",
        &format!("{neural_avg:.4}"),
        "0.216",
    ]);
    t.row(&[
        "RULE-LANTERN avg response",
        &format!("{rule_avg:.5}"),
        "0.015",
    ]);
    t.print();
    assert!(rule_avg < neural_avg, "rule must be faster than neural");
    assert!(neural_avg < 1.0, "neural response must stay under a second");
    println!("shape check: rule << neural << 1 s per description  ✓");
}
