//! Ablation: auxiliary/critical clustering (paper §5.4) on vs off.
//! Without clustering, every auxiliary node (Hash, Sort) becomes its
//! own narration step, inflating step counts and verbosity — the
//! redundancy §5.2 warns about.

use lantern_bench::{tpch_workload, BenchContext, TableReport};
use lantern_core::RuleLantern;
use lantern_engine::Planner;
use lantern_pool::default_pg_store;
use lantern_sql::parse_sql;
use lantern_text::word_tokenize;

fn main() {
    let ctx = BenchContext::new();
    // "No clustering" = a store whose auxiliary target edges are
    // removed via POOL updates.
    let flat_store = default_pg_store();
    for op in ["hash", "sort"] {
        lantern_pool::execute(
            &format!("UPDATE pg SET target = null WHERE name = '{op}'"),
            &flat_store,
        )
        .expect("POOL update");
    }

    let planner = Planner::new(&ctx.tpch);
    let clustered = RuleLantern::new(&ctx.store);
    let flat = RuleLantern::new(&flat_store);
    let mut t = TableReport::new(
        "Ablation: clustering on vs off (steps / tokens per narration)",
        &[
            "Workload",
            "Steps (clustered)",
            "Steps (flat)",
            "Tokens (clustered)",
            "Tokens (flat)",
        ],
    );
    let mut steps_c = 0usize;
    let mut steps_f = 0usize;
    for (i, sql) in tpch_workload().iter().enumerate() {
        let plan = planner.plan(&parse_sql(sql).unwrap()).unwrap();
        let tree = plan.tree();
        let n_c = clustered.narrate(&tree).unwrap();
        let n_f = flat.narrate(&tree).unwrap();
        steps_c += n_c.steps().len();
        steps_f += n_f.steps().len();
        t.row(&[
            format!("Q{}", i + 1),
            n_c.steps().len().to_string(),
            n_f.steps().len().to_string(),
            word_tokenize(&n_c.text()).len().to_string(),
            word_tokenize(&n_f.text()).len().to_string(),
        ]);
    }
    t.print();
    assert!(steps_f >= steps_c, "flat narration cannot have fewer steps");
    println!(
        "clustering saves {} steps over the workload ({} -> {}) — the concision §5.4 buys",
        steps_f - steps_c,
        steps_f,
        steps_c
    );
}
