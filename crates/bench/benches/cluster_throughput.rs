//! Sharded cluster cache efficiency vs a single node at equal traffic.
//!
//! The coordinator's value proposition is shard affinity: routing
//! plans by fingerprint makes each replica's LRU behave like a
//! dedicated cache for its ring range, so three 256-entry caches hold
//! ~768 distinct plans where one 256-entry cache thrashes. This bench
//! drives the *same* seeded duplicate-heavy workload (75% replays
//! drawn from a 2048-plan history, i.e. far more unique plans than one
//! cache holds) against:
//!
//! * **single node** — one replica, one 256-entry cache, direct HTTP;
//! * **3-replica cluster** — three replicas with the same per-node
//!   256-entry cache behind the coordinator.
//!
//! Acceptance: the cluster's aggregate cache-hit ratio must be at
//! least the single node's — shard affinity can only help, and if
//! routing were random the split caches would do no better than one.
//!
//! Run with: `cargo bench --bench cluster_throughput`
//! (`LANTERN_BENCH_SCALE` scales the request count.)

use lantern_bench::{bench_scale, TableReport};
use lantern_cache::{CacheConfig, CachedTranslator};
use lantern_cluster::{serve_cluster, ClusterConfig};
use lantern_core::RuleTranslator;
use lantern_gen::{FormatMix, GenConfig, PlanGenerator};
use lantern_pool::default_mssql_store;
use lantern_serve::{serve_node, HttpClient, ServeConfig, ServerHandle};
use lantern_text::json::JsonValue;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-node narration cache: deliberately smaller than the workload's
/// unique-plan count so a single node cannot hold the working set.
const NODE_CACHE_ENTRIES: usize = 256;

fn boot_replica() -> ServerHandle {
    let cached = Arc::new(CachedTranslator::new(
        RuleTranslator::new(default_mssql_store()),
        CacheConfig {
            max_entries: NODE_CACHE_ENTRIES,
            ..CacheConfig::default()
        },
    ));
    serve_node(
        Arc::clone(&cached),
        Some(cached),
        None,
        None,
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("replica boots")
}

/// Drive every document through one connection; returns requests/sec.
fn drive(addr: SocketAddr, docs: &[String]) -> f64 {
    let mut client = HttpClient::connect(addr).expect("connect");
    let t0 = Instant::now();
    for doc in docs {
        let resp = client.post("/narrate", doc).expect("narrate");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    docs.len() as f64 / t0.elapsed().as_secs_f64()
}

/// Cache hits and misses from a `/stats` body (single-node stats and
/// the coordinator's aggregate use the same `cache` section).
fn cache_hit_ratio(addr: SocketAddr) -> (f64, f64, f64) {
    let mut client = HttpClient::connect(addr).expect("connect");
    let resp = client.get("/stats").expect("stats");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let stats = resp.json().expect("stats json");
    let cache = stats.get("cache").expect("cache section");
    let num = |key: &str| {
        cache
            .get(key)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("missing cache.{key}"))
    };
    let (hits, misses) = (num("hits"), num("misses"));
    (hits, misses, hits / (hits + misses))
}

fn main() {
    let requests = ((3_000.0 * bench_scale()) as usize).max(1_000);
    let dup_rate = 0.75;
    let config = GenConfig {
        // Replays sample a history window far wider than one node's
        // cache: the single node thrashes, the sharded fleet fits.
        history: 2_048,
        ..GenConfig::default()
            .with_seed(0x5EED_CAFE)
            .with_duplicate_rate(dup_rate)
            .with_format(FormatMix::Mixed)
    };
    let docs: Vec<String> = PlanGenerator::new(config)
        .generate(requests)
        .into_iter()
        .map(|item| item.doc)
        .collect();

    // --- single node ------------------------------------------------
    let single = boot_replica();
    let single_rps = drive(single.addr(), &docs);
    let (s_hits, s_misses, s_ratio) = cache_hit_ratio(single.addr());
    single.shutdown().expect("single node shutdown");

    // --- 3-replica cluster, same per-node cache, same traffic -------
    let replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let coordinator = serve_cluster(
        ClusterConfig {
            replicas: replicas.iter().map(|r| r.addr()).collect(),
            workers: 2,
            connect_timeout: Duration::from_millis(500),
            ..ClusterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("coordinator boots");
    let cluster_rps = drive(coordinator.addr(), &docs);
    let (c_hits, c_misses, c_ratio) = cache_hit_ratio(coordinator.addr());
    coordinator.shutdown().expect("coordinator shutdown");
    for replica in replicas {
        replica.shutdown().expect("replica shutdown");
    }

    let mut report = TableReport::new(
        &format!(
            "Sharded cluster vs single node, {requests} requests at {dup_rate} dup rate \
             ({NODE_CACHE_ENTRIES}-entry cache per node)"
        ),
        &["topology", "req/s", "cache hits", "misses", "hit ratio"],
    );
    report.row(&[
        "single node (direct)".to_string(),
        format!("{single_rps:.0}"),
        format!("{s_hits:.0}"),
        format!("{s_misses:.0}"),
        format!("{s_ratio:.3}"),
    ]);
    report.row(&[
        "3 replicas + coordinator".to_string(),
        format!("{cluster_rps:.0}"),
        format!("{c_hits:.0}"),
        format!("{c_misses:.0}"),
        format!("{c_ratio:.3}"),
    ]);
    report.print();
    println!(
        "shard affinity recovered {:.1} points of hit ratio \
         (workload: ~{:.0} unique plans vs {} cache entries per node)",
        (c_ratio - s_ratio) * 100.0,
        requests as f64 * (1.0 - dup_rate),
        NODE_CACHE_ENTRIES,
    );

    // Acceptance: splitting the cache three ways must not cost hits —
    // fingerprint routing is what turns three small caches into one
    // big one. (Equality would mean affinity bought nothing.)
    assert!(
        c_ratio >= s_ratio,
        "sharded hit ratio {c_ratio:.3} fell below single-node {s_ratio:.3}"
    );
}
