//! Figure 3: "Survey of qep formats" — 62 volunteers pick their
//! preferred plan format among JSON text, visual tree, and NL
//! description. Paper shape: NL most preferred, visual tree healthy
//! second, JSON far behind.

use lantern_bench::TableReport;
use lantern_study::{format_preference_survey, Population};

fn main() {
    let mut pop = Population::sample(62, 42);
    let (json, tree, nl) = format_preference_survey(&mut pop, 7);
    let mut t = TableReport::new(
        "Figure 3: preferred QEP format (62 simulated learners)",
        &["Format", "Votes", "Share", "Paper shape"],
    );
    let pct = |v: usize| format!("{:.1}%", 100.0 * v as f64 / 62.0);
    t.row(&[
        "NL description",
        &nl.to_string(),
        &pct(nl),
        "most preferred",
    ]);
    t.row(&[
        "Visual tree",
        &tree.to_string(),
        &pct(tree),
        "healthy support",
    ]);
    t.row(&["JSON text", &json.to_string(), &pct(json), "very few"]);
    t.print();
    assert!(nl > tree && tree > json, "shape must match the paper");
    println!("shape check: NL > visual tree > JSON  ✓");
}
