//! Requests/sec through the HTTP narration service on an 8-query TPC-H
//! workload: the serving-layer overhead and the batched-endpoint win,
//! measured over real loopback sockets.
//!
//! Three paths deliver the same artifact (8 rendered narrations):
//!
//! * **in-process narrate** — the `Translator` API with no HTTP at
//!   all: the floor the service is measured against;
//! * **POST /narrate ×8** — one request per plan on a keep-alive
//!   connection (request parsing, routing, JSON wire format, socket
//!   round-trips);
//! * **POST /narrate/batch** — all 8 plans in one envelope, fanned
//!   through `narrate_batch` (one POEM snapshot, worker fan-out) and
//!   one socket round-trip.
//!
//! On a single core the batch endpoint's win is amortized HTTP (one
//! round-trip instead of eight); on multi-core hosts the fan-out
//! multiplies it.
//!
//! Run with: `cargo bench --bench serve_throughput`
//! (`LANTERN_BENCH_SCALE` scales the iteration count.)

use lantern_bench::{bench_scale, tpch_workload, BenchContext, TableReport};
use lantern_core::{NarrationRequest, RuleTranslator, Translator};
use lantern_plan::plan_to_pg_json;
use lantern_serve::{serve, HttpClient, ServeConfig};
use lantern_text::json::JsonValue;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let ctx = BenchContext::new();
    let workload: Vec<String> = tpch_workload().into_iter().take(8).collect();
    let reqs: Vec<NarrationRequest> = ctx.narration_requests(&ctx.tpch, &workload);
    assert_eq!(reqs.len(), 8, "all 8 TPC-H queries must plan");
    // Serialize each plan as the PG-JSON document a client would POST.
    let docs: Vec<String> = reqs
        .iter()
        .map(|r| plan_to_pg_json(&r.resolve_tree().expect("tree request")))
        .collect();
    let batch_body =
        JsonValue::Array(docs.iter().cloned().map(JsonValue::String).collect()).to_string_compact();

    let rule = RuleTranslator::new(ctx.store.clone());
    let handle = serve(
        RuleTranslator::new(ctx.store.clone()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind ephemeral port");
    let mut client = HttpClient::connect(handle.addr()).expect("connect");

    let iters = ((200.0 * bench_scale()) as usize).max(20);

    // Warm-up: prime the snapshot cache, the connection, and the route.
    for _ in 0..10 {
        let in_process: Vec<_> = reqs.iter().map(|r| rule.narrate(r)).collect();
        black_box(in_process);
        for doc in &docs {
            assert_eq!(client.post("/narrate", doc).expect("narrate").status, 200);
        }
        assert_eq!(
            client
                .post("/narrate/batch", &batch_body)
                .expect("batch")
                .status,
            200
        );
    }

    // Floor: the same narrations with no serving layer at all.
    let t0 = Instant::now();
    for _ in 0..iters {
        let out: Vec<_> = reqs.iter().map(|r| rule.narrate(r)).collect();
        black_box(out);
    }
    let in_process = t0.elapsed();

    // One HTTP request per plan, keep-alive connection.
    let t0 = Instant::now();
    for _ in 0..iters {
        for doc in &docs {
            black_box(client.post("/narrate", doc).expect("narrate"));
        }
    }
    let single = t0.elapsed();

    // All 8 plans per request through the batch endpoint.
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(client.post("/narrate/batch", &batch_body).expect("batch"));
    }
    let batched = t0.elapsed();

    let n = (iters * docs.len()) as f64;
    let thr = |elapsed: std::time::Duration| n / elapsed.as_secs_f64();

    let mut report = TableReport::new(
        "Service throughput, 8-plan TPC-H workload over loopback HTTP (plans/s)",
        &["path", "plans/s", "vs in-process"],
    );
    report.row(&[
        "in-process narrate (no HTTP)".to_string(),
        format!("{:.0}", thr(in_process)),
        "1.00x".to_string(),
    ]);
    report.row(&[
        "POST /narrate x8 (keep-alive)".to_string(),
        format!("{:.0}", thr(single)),
        format!("{:.2}x", in_process.as_secs_f64() / single.as_secs_f64()),
    ]);
    report.row(&[
        "POST /narrate/batch (one envelope)".to_string(),
        format!("{:.0}", thr(batched)),
        format!("{:.2}x", in_process.as_secs_f64() / batched.as_secs_f64()),
    ]);
    report.print();
    println!(
        "batch endpoint speedup over per-plan requests: {:.2}x \
         ({} worker thread(s), {} HTTP requests total)",
        single.as_secs_f64() / batched.as_secs_f64(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        iters * (docs.len() + 1),
    );

    drop(client);
    handle.shutdown().expect("clean shutdown");

    // --- concurrency sweep: latency percentiles at C open conns ----
    //
    // C keep-alive connections stay open for the whole measurement;
    // requests round-robin across them with one in flight at a time,
    // so the numbers isolate what holding C live sockets costs the
    // serving core (readiness bookkeeping on the event path, parked
    // threads on the legacy path). The legacy path is measured at
    // C = 1 only: beyond the pool size it parks whole connections on
    // workers, which is exactly the scaling wall the event loop
    // removes.
    let sweep_requests = ((1_000.0 * bench_scale()) as usize).max(200);
    let sweep = |legacy: bool, conns: usize, metrics: bool| -> (u64, u64, f64) {
        let handle = serve(
            RuleTranslator::new(ctx.store.clone()),
            "127.0.0.1:0",
            ServeConfig {
                // Long idle timeout: parked connections must survive
                // the whole sweep point, not get idle-swept mid-run.
                read_timeout: std::time::Duration::from_secs(120),
                max_conns: 2048,
                legacy_blocking: legacy,
                metrics,
                ..ServeConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let mut clients: Vec<HttpClient> = (0..conns)
            .map(|_| HttpClient::connect(handle.addr()).expect("connect"))
            .collect();
        let requests = sweep_requests.max(conns * 2);
        let mut latencies = Vec::with_capacity(requests);
        let t0 = Instant::now();
        for i in 0..requests {
            let doc = &docs[i % docs.len()];
            let client = &mut clients[i % conns];
            let t = Instant::now();
            let resp = client.post("/narrate", doc).expect("narrate");
            assert_eq!(resp.status, 200);
            latencies.push(t.elapsed().as_micros() as u64);
        }
        let elapsed = t0.elapsed();
        drop(clients);
        handle.shutdown().expect("clean shutdown");
        latencies.sort_unstable();
        let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
        (
            pct(0.50),
            pct(0.99),
            requests as f64 / elapsed.as_secs_f64(),
        )
    };

    let mut report = TableReport::new(
        "Keep-alive concurrency sweep, POST /narrate round-robin (µs per request)",
        &["path", "conns", "p50 µs", "p99 µs", "req/s"],
    );
    let (p50, p99, legacy_rps) = sweep(true, 1, true);
    report.row(&[
        "legacy blocking".to_string(),
        "1".to_string(),
        p50.to_string(),
        p99.to_string(),
        format!("{legacy_rps:.0}"),
    ]);
    // The high-C points need the event loop; non-Unix targets fall
    // back to the blocking path where idle connections park workers.
    #[cfg(unix)]
    let concurrencies: &[usize] = &[1, 64, 256, 1024];
    #[cfg(not(unix))]
    let concurrencies: &[usize] = &[1];
    let mut event_c1_rps = f64::NAN;
    for &conns in concurrencies {
        let (p50, p99, rps) = sweep(false, conns, true);
        if conns == 1 {
            event_c1_rps = rps;
        }
        report.row(&[
            "event-driven".to_string(),
            conns.to_string(),
            p50.to_string(),
            p99.to_string(),
            format!("{rps:.0}"),
        ]);
    }
    report.print();
    // Acceptance: the event path must not cost throughput at C = 1
    // (0.5x guards against CI noise, not a real regression budget),
    // and must have sustained every high-C point above with all-200s.
    assert!(
        event_c1_rps >= 0.5 * legacy_rps,
        "event path at C=1 ({event_c1_rps:.0} req/s) fell far below \
         the blocking path ({legacy_rps:.0} req/s)"
    );

    // --- observability overhead guard --------------------------------
    //
    // The tracing layer (per-stage spans, request histograms, request
    // IDs, the slow-request ring) is on by default, so its cost is paid
    // by every request. Measure the same sweep point with and without
    // it; the instrumented server must hold at least 90% of the bare
    // server's throughput, or the "observability is effectively free"
    // claim in docs/OBSERVABILITY.md is broken.
    #[cfg(unix)]
    let guard_conns = 64;
    #[cfg(not(unix))]
    let guard_conns = 1;
    let (on_p50, on_p99, rps_on) = sweep(false, guard_conns, true);
    let (off_p50, off_p99, rps_off) = sweep(false, guard_conns, false);
    let mut report = TableReport::new(
        "Observability overhead, POST /narrate at fixed concurrency",
        &["metrics", "conns", "p50 µs", "p99 µs", "req/s"],
    );
    report.row(&[
        "on".to_string(),
        guard_conns.to_string(),
        on_p50.to_string(),
        on_p99.to_string(),
        format!("{rps_on:.0}"),
    ]);
    report.row(&[
        "off".to_string(),
        guard_conns.to_string(),
        off_p50.to_string(),
        off_p99.to_string(),
        format!("{rps_off:.0}"),
    ]);
    report.print();
    println!(
        "metrics-on throughput at C={guard_conns}: {:.1}% of metrics-off",
        100.0 * rps_on / rps_off
    );
    assert!(
        rps_on >= 0.9 * rps_off,
        "tracing overhead too high: {rps_on:.0} req/s with metrics vs \
         {rps_off:.0} req/s without at C={guard_conns}"
    );
}
