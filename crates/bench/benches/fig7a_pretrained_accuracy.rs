//! Figure 7(a): validation accuracy across the embedding variants —
//! random init vs GloVe/Word2Vec (pre-trained and self-trained) vs
//! BERT/ELMo-style contextual. Paper shape: pre-trained > self-trained
//! > random; contextual embeddings best.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::registry::TABLE5_VARIANTS;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(20, true);
    let epochs = 8;

    let mut rows: Vec<(String, Vec<f64>, f64)> = Vec::new();
    for variant in TABLE5_VARIANTS {
        let mut model = variant.build(&ts, quick_config(epochs, 3));
        let report = model.train(&ts);
        let curve: Vec<f64> = report.epochs.iter().map(|e| e.val_accuracy).collect();
        let best = curve.iter().cloned().fold(0.0, f64::max);
        rows.push((variant.name.to_string(), curve, best));
    }

    let mut t = TableReport::new(
        "Figure 7(a): validation accuracy per epoch (pre-trained vs self-trained)",
        &["Method", "Epoch curve (val accuracy)", "Best"],
    );
    for (name, curve, best) in &rows {
        let series = curve
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[name.clone(), series, format!("{best:.3}")]);
    }
    t.print();
    let best_of = |needle: &str| {
        rows.iter()
            .find(|(n, _, _)| n.contains(needle))
            .map(|(_, _, b)| *b)
            .unwrap_or(0.0)
    };
    println!(
        "shape: random {:.3} | W2V self {:.3} pre {:.3} | GloVe self {:.3} pre {:.3} | \
         BERT {:.3} | ELMo {:.3}",
        best_of("QEP2Seq"),
        best_of("Word2Vec (self"),
        best_of("Word2Vec (pre"),
        best_of("GloVe (self"),
        best_of("GloVe (pre"),
        best_of("BERT"),
        best_of("ELMo"),
    );
    println!("paper shape: pre-trained beats self-trained; contextual embeddings strongest");
}
