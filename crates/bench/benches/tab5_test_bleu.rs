//! Table 5: test-set BLEU of the seven QEP2Seq variants with beam 4
//! (trained on TPC-H+SDSS, tested on IMDB). Paper: 51.46 (random) …
//! 73.73 (BERT); pre-trained beats self-trained for both static
//! families.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_neural::registry::TABLE5_VARIANTS;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(20, true);
    let test_acts = ctx.imdb_test_acts(25);
    println!(
        "training: {} examples from {} acts; test: {} IMDB acts",
        ts.examples.len(),
        ts.act_count,
        test_acts.len()
    );

    let paper = [51.46, 68.15, 57.01, 64.01, 54.85, 73.73, 71.67];
    let mut t = TableReport::new(
        "Table 5: QEP2Seq test BLEU (beam size 4)",
        &["Method", "BLEU (ours)", "BLEU (paper)"],
    );
    let mut scores = Vec::new();
    for (variant, paper_bleu) in TABLE5_VARIANTS.iter().zip(paper) {
        let mut model = variant.build(&ts, quick_config(10, 44));
        model.train(&ts);
        let bleu = model.test_bleu(&test_acts, 4);
        scores.push((variant.name, bleu));
        t.row(&[
            variant.name.to_string(),
            format!("{bleu:.2}"),
            format!("{paper_bleu:.2}"),
        ]);
    }
    t.print();
    let get = |n: &str| scores.iter().find(|(name, _)| name.contains(n)).unwrap().1;
    println!(
        "shape: random {:.1}; W2V pre {:.1} vs self {:.1}; GloVe pre {:.1} vs self {:.1}; \
         BERT {:.1}; ELMo {:.1}",
        get("QEP2Seq"),
        get("Word2Vec (pre"),
        get("Word2Vec (self"),
        get("GloVe (pre"),
        get("GloVe (self"),
        get("BERT"),
        get("ELMo")
    );
    println!("paper shape: every embedding variant should be competitive with random init;");
    println!("pre-trained generally >= self-trained (narrow self corpus).");
}
