//! Figure 6(b): training/validation loss with vs without pre-trained
//! Word2Vec decoder embeddings. Paper shape: pre-trained vectors speed
//! up convergence and lower the validation loss.

use lantern_bench::{quick_config, BenchContext, TableReport};
use lantern_embed::{builtin_english_corpus, Embedder, Word2VecTrainer};
use lantern_neural::Qep2Seq;

fn main() {
    let ctx = BenchContext::new();
    let ts = ctx.paper_training_set(20, true);
    let epochs = 10;

    let mut random = Qep2Seq::new(&ts, quick_config(epochs, 2));
    let r_random = random.train(&ts);

    let emb = Word2VecTrainer {
        dim: 16,
        epochs: 4,
        ..Default::default()
    }
    .train(&builtin_english_corpus(), 5);
    let mut w2v = Qep2Seq::with_embedding(&ts, quick_config(epochs, 2), &emb);
    let r_w2v = w2v.train(&ts);

    let mut t = TableReport::new(
        "Figure 6(b): loss curves, QEP2Seq vs QEP2Seq+Word2Vec",
        &[
            "Epoch",
            "Train (QEP2Seq)",
            "Val (QEP2Seq)",
            "Train (+W2V)",
            "Val (+W2V)",
        ],
    );
    for (a, b) in r_random.epochs.iter().zip(&r_w2v.epochs) {
        t.row(&[
            a.epoch.to_string(),
            format!("{:.4}", a.train_loss),
            format!("{:.4}", a.val_loss),
            format!("{:.4}", b.train_loss),
            format!("{:.4}", b.val_loss),
        ]);
    }
    t.print();
    println!("paper shape: pre-trained word vectors speed up training and reduce validation loss");
}
