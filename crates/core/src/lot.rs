//! The language-annotated operator tree (LOT, paper §5.3): the operator
//! tree extended so each node carries a `name` (the POEM alias, falling
//! back to the operator name) and a `label` (the natural-language
//! template produced by the POOL `COMPOSE` statement for the node).

use lantern_plan::{PlanNode, PlanTree};
use lantern_pool::{PoemLookup, PoemObject};
use std::fmt;

/// Error raised while building or narrating a LOT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The plan references an operator the POEM store has no entry for
    /// (the failure NEURON hits on SQL Server plans, paper US 5).
    UnknownOperator {
        /// Source system of the plan.
        source: String,
        /// Vendor operator name.
        op: String,
    },
    /// Malformed plan (e.g. an auxiliary node without a child).
    PlanError(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownOperator { source, op } => {
                write!(f, "operator '{op}' has no POEM entry for source '{source}'")
            }
            CoreError::PlanError(m) => write!(f, "plan error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// One LOT node: the plan node plus its language annotations.
#[derive(Debug, Clone)]
pub struct LotNode {
    /// The underlying plan node (children stripped — structure lives in
    /// [`LotNode::children`]).
    pub plan: PlanNode,
    /// Learner-visible operator name (`n.name`): the POEM alias, or
    /// the POEM name when no alias is specified.
    pub name: String,
    /// Natural-language description template (`n.label`), from
    /// `COMPOSE <op> FROM <source>`.
    pub label: String,
    /// The POEM object backing this node.
    pub poem: PoemObject,
    /// Child LOT nodes.
    pub children: Vec<LotNode>,
}

impl LotNode {
    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(LotNode::size).sum::<usize>()
    }
}

/// A LOT with its source tag.
#[derive(Debug, Clone)]
pub struct LotTree {
    /// Source system (`pg`, `mssql`).
    pub source: String,
    /// Root LOT node.
    pub root: LotNode,
}

/// Build the LOT for `tree` using the operator annotations in `store`
/// (paper Algorithm 1, line 1).
///
/// Generic over [`PoemLookup`] so the hot path can thread a single
/// [`lantern_pool::PoemSnapshot`] through the whole construction (one
/// lock acquisition per narration) while ad-hoc callers keep passing
/// the live [`lantern_pool::PoemStore`].
pub fn build_lot<L: PoemLookup>(tree: &PlanTree, store: &L) -> Result<LotTree, CoreError> {
    Ok(LotTree {
        source: tree.source.clone(),
        root: annotate(&tree.root, &tree.source, store)?,
    })
}

fn annotate<L: PoemLookup>(node: &PlanNode, source: &str, store: &L) -> Result<LotNode, CoreError> {
    let (poem, label) =
        store
            .find_labeled(source, &node.op)
            .ok_or_else(|| CoreError::UnknownOperator {
                source: source.to_string(),
                op: node.op.clone(),
            })?;
    let mut lot = LotNode {
        plan: node.clone_shallow(),
        name: poem.display_name().to_string(),
        label,
        poem,
        children: Vec::with_capacity(node.children.len()),
    };
    for c in &node.children {
        lot.children.push(annotate(c, source, store)?);
    }
    Ok(lot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_pool::default_pg_store;

    fn figure_4_tree() -> PlanTree {
        PlanTree::new(
            "pg",
            PlanNode::new("Unique").with_child(
                PlanNode::new("Aggregate").with_child(
                    PlanNode::new("Sort").with_child(
                        PlanNode::new("Hash Join")
                            .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                            .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                            .with_child(
                                PlanNode::new("Hash").with_child(
                                    PlanNode::new("Seq Scan")
                                        .on_relation("publication")
                                        .with_filter("title LIKE '%July%'"),
                                ),
                            ),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn annotates_every_node() {
        let store = default_pg_store();
        let lot = build_lot(&figure_4_tree(), &store).unwrap();
        assert_eq!(lot.root.size(), 7);
        assert_eq!(lot.root.name, "duplicate removal"); // Unique alias
        assert_eq!(lot.root.label, "perform duplicate removal on $R1$");
    }

    #[test]
    fn hash_join_label_matches_paper_template() {
        let store = default_pg_store();
        let lot = build_lot(&figure_4_tree(), &store).unwrap();
        let hj = &lot.root.children[0].children[0].children[0];
        assert_eq!(hj.plan.op, "Hash Join");
        assert_eq!(
            hj.label,
            "perform hash join on $R2$ and $R1$ on condition $cond$"
        );
    }

    #[test]
    fn unknown_operator_is_an_error() {
        let store = default_pg_store();
        let tree = PlanTree::new("pg", PlanNode::new("Quantum Scan"));
        match build_lot(&tree, &store) {
            Err(CoreError::UnknownOperator { op, .. }) => assert_eq!(op, "Quantum Scan"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_source_is_an_error() {
        let store = default_pg_store();
        // A SQL Server plan against a pg-only store must fail — the
        // cross-RDBMS scenario of US 5.
        let tree = PlanTree::new("mssql", PlanNode::new("Table Scan"));
        assert!(build_lot(&tree, &store).is_err());
    }

    #[test]
    fn name_falls_back_to_poem_name_without_alias() {
        let store = default_pg_store();
        let tree = PlanTree::new(
            "pg",
            PlanNode::new("Hash").with_child(PlanNode::new("Seq Scan")),
        );
        let lot = build_lot(&tree, &store).unwrap();
        assert_eq!(lot.root.name, "hash"); // hash has no alias
    }
}
