//! The end-to-end LANTERN facade: plan artifact in (JSON/XML/tree),
//! natural-language narration out.

use crate::lot::CoreError;
use crate::narrate::{Narration, RuleLantern};
use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan, PlanTree};
use lantern_pool::PoemStore;

/// End-to-end rule-based LANTERN: owns a POEM store and translates
/// plan artifacts from any supported source.
///
/// ```
/// use lantern_core::Lantern;
/// use lantern_pool::default_pg_store;
///
/// let lantern = Lantern::new(default_pg_store());
/// let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
/// let narration = lantern.narrate_pg_json(doc).unwrap();
/// assert_eq!(
///     narration.text(),
///     "1. perform sequential scan on orders to get the final results."
/// );
/// ```
pub struct Lantern {
    store: PoemStore,
}

impl Lantern {
    /// Create a facade over a POEM store.
    pub fn new(store: PoemStore) -> Self {
        Lantern { store }
    }

    /// Access the underlying store (e.g. to run POOL statements).
    pub fn store(&self) -> &PoemStore {
        &self.store
    }

    /// Narrate an already-parsed plan tree.
    pub fn narrate(&self, tree: &PlanTree) -> Result<Narration, CoreError> {
        RuleLantern::new(&self.store).narrate(tree)
    }

    /// Narrate a PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    pub fn narrate_pg_json(&self, doc: &str) -> Result<Narration, CoreError> {
        let tree = parse_pg_json_plan(doc).map_err(|e| CoreError::PlanError(e.to_string()))?;
        self.narrate(&tree)
    }

    /// Narrate a SQL Server XML showplan.
    pub fn narrate_sqlserver_xml(&self, doc: &str) -> Result<Narration, CoreError> {
        let tree =
            parse_sqlserver_xml_plan(doc).map_err(|e| CoreError::PlanError(e.to_string()))?;
        self.narrate(&tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_pool::{default_mssql_store, default_pg_store};

    #[test]
    fn json_to_narration() {
        let lantern = Lantern::new(default_pg_store());
        let doc = r#"[{"Plan": {"Node Type": "Hash Join",
            "Hash Cond": "((a.x) = (b.y))",
            "Plans": [
              {"Node Type": "Seq Scan", "Relation Name": "a"},
              {"Node Type": "Hash",
               "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
            ]}}]"#;
        let n = lantern.narrate_pg_json(doc).unwrap();
        assert!(
            n.text().contains("hash b and perform hash join on a and b"),
            "{}",
            n.text()
        );
    }

    #[test]
    fn xml_to_narration_requires_mssql_store() {
        let doc = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple><QueryPlan>
            <RelOp PhysicalOp="Table Scan" EstimateRows="10" EstimatedTotalSubtreeCost="1">
              <Object Table="photoobj"/>
            </RelOp>
        </QueryPlan></StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;
        // pg-only store: fails (operator names differ across sources).
        let pg_only = Lantern::new(default_pg_store());
        assert!(pg_only.narrate_sqlserver_xml(doc).is_err());
        // Store with the mssql catalog: succeeds.
        let both = Lantern::new(default_mssql_store());
        let n = both.narrate_sqlserver_xml(doc).unwrap();
        assert!(n.text().contains("perform table scan on photoobj"));
    }

    #[test]
    fn malformed_documents_report_plan_errors() {
        let lantern = Lantern::new(default_pg_store());
        assert!(matches!(
            lantern.narrate_pg_json("not json"),
            Err(CoreError::PlanError(_))
        ));
        assert!(matches!(
            lantern.narrate_sqlserver_xml("<no-plan/>"),
            Err(CoreError::PlanError(_))
        ));
    }
}
