//! The end-to-end LANTERN facade: plan artifact in (JSON/XML/tree),
//! natural-language narration out.
//!
//! `Lantern` predates the unified [`Translator`] API and is kept as a
//! thin compatibility layer: it now implements [`Translator`] itself,
//! and its per-vendor methods are deprecated wrappers over
//! [`NarrationRequest`] + [`RuleTranslator`].

use crate::api::{LanternError, NarrationRequest, NarrationResponse, RuleTranslator, Translator};
use crate::lot::CoreError;
use crate::narrate::Narration;
use lantern_plan::PlanTree;
use lantern_pool::PoemStore;

/// End-to-end rule-based LANTERN: owns a POEM store and translates
/// plan artifacts from any supported source.
///
/// ```
/// use lantern_core::{Lantern, NarrationRequest, Translator};
/// use lantern_pool::default_pg_store;
///
/// let lantern = Lantern::new(default_pg_store());
/// let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
/// let response = lantern.narrate_request(&NarrationRequest::auto(doc).unwrap()).unwrap();
/// assert_eq!(
///     response.text,
///     "1. perform sequential scan on orders to get the final results."
/// );
/// ```
pub struct Lantern {
    rule: RuleTranslator,
}

impl Lantern {
    /// Create a facade over a POEM store.
    pub fn new(store: PoemStore) -> Self {
        Lantern {
            rule: RuleTranslator::new(store),
        }
    }

    /// Access the underlying store (e.g. to run POOL statements).
    pub fn store(&self) -> &PoemStore {
        self.rule.store()
    }

    /// Narrate a request through the unified pipeline (equivalent to
    /// [`Translator::narrate`]; named method provided so callers don't
    /// need the trait in scope).
    pub fn narrate_request(
        &self,
        req: &NarrationRequest,
    ) -> Result<NarrationResponse, LanternError> {
        self.rule.narrate(req)
    }

    /// Narrate an already-parsed plan tree (borrowed — no clone).
    pub fn narrate_tree(&self, tree: &PlanTree) -> Result<Narration, CoreError> {
        let snapshot = self.rule.store().snapshot();
        crate::narrate::narrate_with_lookup(tree, &snapshot)
    }

    /// Narrate an already-parsed plan tree.
    #[deprecated(
        since = "0.2.0",
        note = "use `narrate_tree` (or the `Translator` API); this inherent method shadows \
                `Translator::narrate(&NarrationRequest)` on `Lantern`"
    )]
    pub fn narrate(&self, tree: &PlanTree) -> Result<Narration, CoreError> {
        self.narrate_tree(tree)
    }

    /// Narrate a PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    #[deprecated(
        since = "0.2.0",
        note = "use `NarrationRequest::pg_json` (or `::auto`) with the `Translator` API, \
                e.g. via `lantern::LanternBuilder`"
    )]
    pub fn narrate_pg_json(&self, doc: &str) -> Result<Narration, CoreError> {
        self.rule
            .narrate(&NarrationRequest::pg_json(doc))
            .map(|r| r.narration)
            .map_err(CoreError::from)
    }

    /// Narrate a SQL Server XML showplan.
    #[deprecated(
        since = "0.2.0",
        note = "use `NarrationRequest::sqlserver_xml` (or `::auto`) with the `Translator` API, \
                e.g. via `lantern::LanternBuilder`"
    )]
    pub fn narrate_sqlserver_xml(&self, doc: &str) -> Result<Narration, CoreError> {
        self.rule
            .narrate(&NarrationRequest::sqlserver_xml(doc))
            .map(|r| r.narration)
            .map_err(CoreError::from)
    }
}

impl Translator for Lantern {
    fn backend(&self) -> &str {
        self.rule.backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        self.rule.narrate(req)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        self.rule.narrate_batch(reqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_pool::{default_mssql_store, default_pg_store};

    #[test]
    fn json_to_narration() {
        let lantern = Lantern::new(default_pg_store());
        let doc = r#"[{"Plan": {"Node Type": "Hash Join",
            "Hash Cond": "((a.x) = (b.y))",
            "Plans": [
              {"Node Type": "Seq Scan", "Relation Name": "a"},
              {"Node Type": "Hash",
               "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
            ]}}]"#;
        let n = lantern
            .narrate_request(&NarrationRequest::auto(doc).unwrap())
            .unwrap();
        assert!(
            n.text.contains("hash b and perform hash join on a and b"),
            "{}",
            n.text
        );
    }

    #[test]
    fn xml_to_narration_requires_mssql_store() {
        let doc = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple><QueryPlan>
            <RelOp PhysicalOp="Table Scan" EstimateRows="10" EstimatedTotalSubtreeCost="1">
              <Object Table="photoobj"/>
            </RelOp>
        </QueryPlan></StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;
        let req = NarrationRequest::auto(doc).unwrap();
        // pg-only store: fails (operator names differ across sources).
        let pg_only = Lantern::new(default_pg_store());
        assert!(matches!(
            pg_only.narrate_request(&req),
            Err(LanternError::UnknownOperator { .. })
        ));
        // Store with the mssql catalog: succeeds.
        let both = Lantern::new(default_mssql_store());
        let n = both.narrate_request(&req).unwrap();
        assert!(n.text.contains("perform table scan on photoobj"));
    }

    #[test]
    fn deprecated_wrappers_keep_working() {
        // Old callers must keep compiling and behaving until the next
        // major release; this is the compatibility contract the
        // deprecation wrappers exist for.
        #![allow(deprecated)]
        let lantern = Lantern::new(default_pg_store());
        let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
        let narration = lantern.narrate_pg_json(doc).unwrap();
        assert_eq!(
            narration.text(),
            "1. perform sequential scan on orders to get the final results."
        );
        assert!(matches!(
            lantern.narrate_pg_json("not json"),
            Err(CoreError::PlanError(_))
        ));
        assert!(matches!(
            lantern.narrate_sqlserver_xml("<no-plan/>"),
            Err(CoreError::PlanError(_))
        ));
        // The deprecated tree method and its replacement agree.
        let tree = lantern_plan::parse_pg_json_plan(doc).unwrap();
        assert_eq!(
            lantern.narrate(&tree).unwrap(),
            lantern.narrate_tree(&tree).unwrap()
        );
    }

    #[test]
    fn facade_serves_the_translator_trait() {
        fn narrate_via_trait<T: Translator>(t: &T, doc: &str) -> String {
            t.narrate(&NarrationRequest::auto(doc).unwrap())
                .unwrap()
                .text
        }
        let lantern = Lantern::new(default_pg_store());
        let text = narrate_via_trait(
            &lantern,
            r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#,
        );
        assert!(text.contains("sequential scan on orders"));
        assert_eq!(lantern.backend(), "rule");
    }
}
