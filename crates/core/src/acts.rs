//! Act decomposition (paper §6.2): a QEP is decomposed into *acts*,
//! each a single operator or an auxiliary/critical cluster. Acts are
//! the training unit of NEURAL-LANTERN — input at the operator level
//! rather than the whole tree, which both multiplies training data and
//! improves generalization.

use crate::lot::CoreError;
use crate::narrate::RuleLantern;
use crate::tags::TagBinding;
use lantern_plan::PlanTree;
use lantern_pool::PoemStore;

/// One act: an operator (or cluster) with its rule-generated labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Act {
    /// Vendor operator names (auxiliary first for clusters).
    pub ops: Vec<String>,
    /// Tag-abstracted output label (the seq2seq target).
    pub tagged_label: String,
    /// Concrete label (the rule-lantern sentence).
    pub concrete_label: String,
    /// Tag bindings to restore concrete values after decoding.
    pub bindings: TagBinding,
}

impl Act {
    /// Linearize this act into the QEP2Seq *input* token sequence:
    /// normalized operator tokens followed by one token per bound tag,
    /// in binding order. Example: `["HASHJOIN", "HASH", "<T>", "<T>",
    /// "<C>", "<TN>"]`.
    pub fn input_tokens(&self) -> Vec<String> {
        let mut toks: Vec<String> = self
            .ops
            .iter()
            .rev() // critical operator first
            .map(|o| {
                o.chars()
                    .filter(|c| c.is_alphanumeric())
                    .flat_map(char::to_uppercase)
                    .collect()
            })
            .collect();
        for (tag, _) in &self.bindings {
            toks.push(tag.clone());
        }
        toks
    }

    /// Tokenized output label (the seq2seq target sequence).
    pub fn output_tokens(&self) -> Vec<String> {
        lantern_text::tokenize(&self.tagged_label)
    }
}

/// Decompose a plan into acts (runs RULE-LANTERN once; each narration
/// step is one act).
pub fn decompose_acts(tree: &PlanTree, store: &PoemStore) -> Result<Vec<Act>, CoreError> {
    let narration = RuleLantern::new(store).narrate(tree)?;
    Ok(narration
        .steps()
        .iter()
        .map(|s| Act {
            ops: s.ops.clone(),
            tagged_label: s.tagged.clone(),
            concrete_label: s.text.clone(),
            bindings: s.bindings.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::PlanNode;
    use lantern_pool::default_pg_store;

    fn figure_4() -> PlanTree {
        PlanTree::new(
            "pg",
            PlanNode::new("Unique").with_child(
                PlanNode::new("Aggregate").with_child(
                    PlanNode::new("Sort").with_child(
                        PlanNode::new("Hash Join")
                            .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                            .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                            .with_child(
                                PlanNode::new("Hash").with_child(
                                    PlanNode::new("Seq Scan")
                                        .on_relation("publication")
                                        .with_filter("title LIKE '%July%'"),
                                ),
                            ),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn figure_4_decomposes_into_five_acts() {
        // Paper §6.2: SEQUENTIAL SCAN and (HASH JOIN, HASH) are acts.
        let acts = decompose_acts(&figure_4(), &default_pg_store()).unwrap();
        assert_eq!(acts.len(), 5);
        assert_eq!(acts[0].ops, vec!["Seq Scan"]);
        assert_eq!(acts[2].ops, vec!["Hash", "Hash Join"]);
        assert_eq!(acts[3].ops, vec!["Sort", "Aggregate"]);
    }

    #[test]
    fn input_tokens_are_schema_independent() {
        let acts = decompose_acts(&figure_4(), &default_pg_store()).unwrap();
        let join_act = &acts[2];
        let toks = join_act.input_tokens();
        assert_eq!(toks[0], "HASHJOIN");
        assert_eq!(toks[1], "HASH");
        // No concrete relation names leak into the input.
        for t in &toks {
            assert!(!t.contains("inproceedings"), "{toks:?}");
        }
        assert!(toks.contains(&"<T>".to_string()));
        assert!(toks.contains(&"<C>".to_string()));
    }

    #[test]
    fn output_tokens_tokenize_the_tagged_label() {
        let acts = decompose_acts(&figure_4(), &default_pg_store()).unwrap();
        let toks = acts[0].output_tokens();
        assert_eq!(toks[0], "perform");
        assert!(toks.contains(&"<T>".to_string()));
    }

    #[test]
    fn different_plans_same_operator_share_input_tokens() {
        // Act-level granularity: the same operator shape yields the
        // same input regardless of schema (generalization rationale).
        let store = default_pg_store();
        let t1 = PlanTree::new("pg", PlanNode::new("Seq Scan").on_relation("orders"));
        let t2 = PlanTree::new("pg", PlanNode::new("Seq Scan").on_relation("movies"));
        let a1 = decompose_acts(&t1, &store).unwrap();
        let a2 = decompose_acts(&t2, &store).unwrap();
        assert_eq!(a1[0].input_tokens(), a2[0].input_tokens());
        assert_eq!(a1[0].tagged_label, a2[0].tagged_label);
        assert_ne!(a1[0].concrete_label, a2[0].concrete_label);
    }
}
