//! The unified translator API: one request/response pipeline over
//! every LANTERN backend.
//!
//! The paper evaluates LANTERN as *one* system with interchangeable
//! instantiations — RULE-LANTERN, NEURAL-LANTERN — side by side with
//! the NEURON baseline. This module gives the reproduction the same
//! shape: a [`Translator`] trait every backend implements, fed by a
//! source-agnostic [`PlanSource`] (PostgreSQL JSON, SQL Server XML, or
//! an already-parsed tree, with format auto-detection), returning a
//! [`NarrationResponse`] and reporting failures through one structured
//! [`LanternError`].
//!
//! Batch narration ([`Translator::narrate_batch`]) is first-class: the
//! rule backend snapshots the POEM store once per batch and fans the
//! requests out across worker threads (see [`narrate_batch_parallel`]).

use crate::lot::CoreError;
use crate::narrate::{narrate_with_lookup, Narration, RenderStyle};
use lantern_plan::{parse_pg_json_plan, parse_sqlserver_xml_plan, PlanTree};
use lantern_pool::{PoemLookup, PoemSnapshot, PoemStore};
use std::fmt;

/// The plan serialization formats the pipeline understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanFormat {
    /// PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    PgJson,
    /// SQL Server XML showplan.
    SqlServerXml,
}

impl fmt::Display for PlanFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanFormat::PgJson => write!(f, "PostgreSQL JSON"),
            PlanFormat::SqlServerXml => write!(f, "SQL Server XML"),
        }
    }
}

/// Structured error type of the unified pipeline. Every backend and
/// every pipeline stage (format detection, parsing, LOT construction,
/// model inference) reports through this one type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LanternError {
    /// The request carried an empty (or whitespace-only) document.
    EmptyInput,
    /// Format auto-detection could not classify the document.
    UnknownFormat {
        /// The first bytes of the offending document.
        snippet: String,
    },
    /// The document claimed (or was detected as) `format` but did not
    /// parse as a plan of that format.
    Parse {
        /// Format the document was parsed as.
        format: PlanFormat,
        /// Parser diagnostic.
        message: String,
    },
    /// The plan references an operator the POEM store has no entry for
    /// (the failure NEURON hits on SQL Server plans, paper US 5).
    UnknownOperator {
        /// Source system of the plan.
        source: String,
        /// Vendor operator name.
        op: String,
    },
    /// Structurally invalid plan (e.g. an auxiliary node without a
    /// child).
    Plan {
        /// Diagnostic message.
        message: String,
    },
    /// A backend-specific failure (e.g. the NEURON baseline has no
    /// hard-coded rule for an operator).
    Backend {
        /// Backend name as reported by [`Translator::backend`].
        backend: String,
        /// Backend diagnostic.
        message: String,
    },
    /// The pipeline was mis-configured (e.g. a backend was selected
    /// without the model it needs).
    Config {
        /// Diagnostic message.
        message: String,
    },
}

impl fmt::Display for LanternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LanternError::EmptyInput => write!(f, "empty plan document"),
            LanternError::UnknownFormat { snippet } => {
                write!(f, "unrecognized plan format (input starts {snippet:?})")
            }
            LanternError::Parse { format, message } => {
                write!(f, "invalid {format} plan: {message}")
            }
            LanternError::UnknownOperator { source, op } => {
                write!(f, "operator '{op}' has no POEM entry for source '{source}'")
            }
            LanternError::Plan { message } => write!(f, "plan error: {message}"),
            LanternError::Backend { backend, message } => {
                write!(f, "backend '{backend}' failed: {message}")
            }
            LanternError::Config { message } => write!(f, "configuration error: {message}"),
        }
    }
}

impl LanternError {
    /// Stable machine-readable error kind, used as the `error.kind`
    /// field of the service wire format (see `lantern-serve` and
    /// `docs/SERVING.md`). One value per variant; these strings are a
    /// compatibility surface — add new ones, never rename.
    pub fn kind(&self) -> &'static str {
        match self {
            LanternError::EmptyInput => "empty_input",
            LanternError::UnknownFormat { .. } => "unknown_format",
            LanternError::Parse { .. } => "parse",
            LanternError::UnknownOperator { .. } => "unknown_operator",
            LanternError::Plan { .. } => "plan",
            LanternError::Backend { .. } => "backend",
            LanternError::Config { .. } => "config",
        }
    }

    /// The HTTP status a narration service should answer with when this
    /// error terminates a request.
    ///
    /// The mapping follows the error's locus of blame:
    ///
    /// * the *document* is unusable (empty, unclassifiable, or does not
    ///   parse as its detected vendor format) → `400 Bad Request`;
    /// * the document is well-formed but the *plan* cannot be narrated
    ///   (structurally invalid tree, or an operator the POEM catalog
    ///   has no entry for — the paper's US 5 failure) →
    ///   `422 Unprocessable Content`;
    /// * the selected *backend* cannot handle an otherwise valid
    ///   request (e.g. NEURON has no hard-coded rule for a vendor) →
    ///   `501 Not Implemented`;
    /// * the *service* itself is mis-assembled → `500 Internal Server
    ///   Error`.
    pub fn http_status(&self) -> u16 {
        match self {
            LanternError::EmptyInput
            | LanternError::UnknownFormat { .. }
            | LanternError::Parse { .. } => 400,
            LanternError::UnknownOperator { .. } | LanternError::Plan { .. } => 422,
            LanternError::Backend { .. } => 501,
            LanternError::Config { .. } => 500,
        }
    }
}

impl std::error::Error for LanternError {}

impl From<CoreError> for LanternError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::UnknownOperator { source, op } => {
                LanternError::UnknownOperator { source, op }
            }
            CoreError::PlanError(message) => LanternError::Plan { message },
        }
    }
}

impl From<LanternError> for CoreError {
    /// Lossy back-conversion used by the deprecated facade wrappers,
    /// which promised `CoreError` before the unified type existed.
    fn from(e: LanternError) -> Self {
        match e {
            LanternError::UnknownOperator { source, op } => {
                CoreError::UnknownOperator { source, op }
            }
            other => CoreError::PlanError(other.to_string()),
        }
    }
}

/// A source-agnostic plan input: the serialized vendor artifact, or an
/// already-parsed [`PlanTree`] (e.g. straight from the internal
/// planner).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSource {
    /// A PostgreSQL `EXPLAIN (FORMAT JSON)` document.
    PgJson(String),
    /// A SQL Server XML showplan.
    SqlServerXml(String),
    /// An already-parsed plan tree (boxed: a tree is an order of
    /// magnitude larger than a document pointer).
    Tree(Box<PlanTree>),
}

impl PlanSource {
    /// Classify a serialized document by shape: JSON documents start
    /// with `{` or `[`, XML showplans with `<`. A UTF-8 BOM and leading
    /// whitespace/newlines — in any interleaving, as editors and shell
    /// pipelines produce them — are skipped before sniffing. Returns
    /// [`LanternError::EmptyInput`] / [`LanternError::UnknownFormat`]
    /// when no classification is possible.
    pub fn detect(doc: &str) -> Result<PlanFormat, LanternError> {
        let trimmed = doc
            .trim_start_matches(|c: char| c.is_whitespace() || c == '\u{feff}')
            .trim_end();
        match trimmed.chars().next() {
            None => Err(LanternError::EmptyInput),
            Some('{') | Some('[') => Ok(PlanFormat::PgJson),
            Some('<') => Ok(PlanFormat::SqlServerXml),
            Some(_) => Err(LanternError::UnknownFormat {
                snippet: trimmed.chars().take(40).collect(),
            }),
        }
    }

    /// Build a source from a serialized document, auto-detecting the
    /// vendor format. Any leading BOM/whitespace prefix the detector
    /// skipped is stripped from the stored document too, so downstream
    /// parsers never see it.
    pub fn auto(doc: impl Into<String>) -> Result<PlanSource, LanternError> {
        let mut doc = doc.into();
        let format = Self::detect(&doc)?;
        let prefix = doc.len()
            - doc
                .trim_start_matches(|c: char| c.is_whitespace() || c == '\u{feff}')
                .len();
        if prefix > 0 {
            doc.drain(..prefix);
        }
        Ok(match format {
            PlanFormat::PgJson => PlanSource::PgJson(doc),
            PlanFormat::SqlServerXml => PlanSource::SqlServerXml(doc),
        })
    }

    /// Parse (or clone) into a [`PlanTree`].
    pub fn resolve(&self) -> Result<PlanTree, LanternError> {
        match self {
            PlanSource::PgJson(doc) => parse_pg_json_plan(doc).map_err(|e| LanternError::Parse {
                format: PlanFormat::PgJson,
                message: e.to_string(),
            }),
            PlanSource::SqlServerXml(doc) => {
                parse_sqlserver_xml_plan(doc).map_err(|e| LanternError::Parse {
                    format: PlanFormat::SqlServerXml,
                    message: e.to_string(),
                })
            }
            PlanSource::Tree(tree) => Ok(tree.as_ref().clone()),
        }
    }
}

impl From<PlanTree> for PlanSource {
    fn from(tree: PlanTree) -> Self {
        PlanSource::Tree(Box::new(tree))
    }
}

impl From<&PlanTree> for PlanSource {
    fn from(tree: &PlanTree) -> Self {
        PlanSource::Tree(Box::new(tree.clone()))
    }
}

/// One narration request: a plan (from any source) plus per-request
/// rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrationRequest {
    /// Where the plan comes from.
    pub source: PlanSource,
    /// Per-request rendering override; `None` uses the translator's
    /// configured default.
    pub style: Option<RenderStyle>,
}

impl NarrationRequest {
    /// Request narration of the given source.
    pub fn new(source: impl Into<PlanSource>) -> Self {
        NarrationRequest {
            source: source.into(),
            style: None,
        }
    }

    /// Request narration of a serialized document, auto-detecting the
    /// vendor format.
    pub fn auto(doc: impl Into<String>) -> Result<Self, LanternError> {
        Ok(Self::new(PlanSource::auto(doc)?))
    }

    /// Request narration of a PostgreSQL `EXPLAIN (FORMAT JSON)`
    /// document.
    pub fn pg_json(doc: impl Into<String>) -> Self {
        Self::new(PlanSource::PgJson(doc.into()))
    }

    /// Request narration of a SQL Server XML showplan.
    pub fn sqlserver_xml(doc: impl Into<String>) -> Self {
        Self::new(PlanSource::SqlServerXml(doc.into()))
    }

    /// Request narration of an already-parsed tree.
    pub fn from_tree(tree: impl Into<PlanSource>) -> Self {
        Self::new(tree)
    }

    /// Override the rendering style for this request only.
    pub fn with_style(mut self, style: RenderStyle) -> Self {
        self.style = Some(style);
        self
    }

    /// Resolve the request's plan into a tree.
    pub fn resolve_tree(&self) -> Result<PlanTree, LanternError> {
        self.source.resolve()
    }

    /// The style this request renders with, given a translator default.
    pub fn effective_style(&self, default: RenderStyle) -> RenderStyle {
        self.style.unwrap_or(default)
    }
}

/// A completed narration plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrationResponse {
    /// Which backend produced the narration (`"rule"`, `"neural"`,
    /// `"neuron"`, …).
    pub backend: String,
    /// The structured narration (steps, tag abstraction, bindings).
    pub narration: Narration,
    /// The narration rendered in the effective style of the request.
    pub text: String,
}

impl NarrationResponse {
    /// Assemble a response, rendering `narration` in `style`.
    pub fn new(backend: impl Into<String>, narration: Narration, style: RenderStyle) -> Self {
        let text = narration.render(style);
        NarrationResponse {
            backend: backend.into(),
            narration,
            text,
        }
    }

    /// Re-render the contained narration in another style.
    pub fn render(&self, style: RenderStyle) -> String {
        self.narration.render(style)
    }
}

/// A QEP-to-natural-language translator: the one interface the rule,
/// neural, and NEURON-baseline backends all serve.
pub trait Translator {
    /// Stable backend identifier (`"rule"`, `"neural"`, `"neuron"`).
    fn backend(&self) -> &str;

    /// Narrate one request.
    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError>;

    /// Narrate a batch of requests, returning one result per request in
    /// order. The default implementation is sequential; backends with a
    /// shareable read state (e.g. a POEM snapshot) override this to
    /// snapshot once and fan out.
    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        reqs.iter().map(|r| self.narrate(r)).collect()
    }
}

impl<T: Translator + ?Sized> Translator for &T {
    fn backend(&self) -> &str {
        (**self).backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        (**self).narrate(req)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        (**self).narrate_batch(reqs)
    }
}

impl<T: Translator + ?Sized> Translator for std::sync::Arc<T> {
    fn backend(&self) -> &str {
        (**self).backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        (**self).narrate(req)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        (**self).narrate_batch(reqs)
    }
}

impl<T: Translator + ?Sized> Translator for Box<T> {
    fn backend(&self) -> &str {
        (**self).backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        (**self).narrate(req)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        (**self).narrate_batch(reqs)
    }
}

/// One plan-diff request: a base plan, an alternative plan, and
/// per-request rendering options. Both sources resolve independently —
/// the base can be PostgreSQL JSON while the alternative is a SQL
/// Server showplan.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRequest {
    /// The reference plan the alternative is compared against.
    pub base: PlanSource,
    /// The alternative plan.
    pub alt: PlanSource,
    /// Per-request rendering override; `None` uses the diff backend's
    /// configured default.
    pub style: Option<RenderStyle>,
}

impl DiffRequest {
    /// Compare two plan sources.
    pub fn new(base: impl Into<PlanSource>, alt: impl Into<PlanSource>) -> Self {
        DiffRequest {
            base: base.into(),
            alt: alt.into(),
            style: None,
        }
    }

    /// Compare two serialized documents, auto-detecting each vendor
    /// format independently.
    pub fn auto(base: impl Into<String>, alt: impl Into<String>) -> Result<Self, LanternError> {
        Ok(Self::new(PlanSource::auto(base)?, PlanSource::auto(alt)?))
    }

    /// Override the rendering style for this request only.
    pub fn with_style(mut self, style: RenderStyle) -> Self {
        self.style = Some(style);
        self
    }

    /// The style this request renders with, given a backend default.
    pub fn effective_style(&self, default: RenderStyle) -> RenderStyle {
        self.style.unwrap_or(default)
    }
}

/// One classified edit between a base plan and an alternative, in wire
/// form: a stable `kind` slug, the anchor node's path, and a rendered
/// one-line `detail`. The structural edit model itself (typed variants,
/// matching, scoring) lives in the `lantern-diff` crate; this flattened
/// shape is what crosses the API and the HTTP boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffChange {
    /// Stable change-kind slug. Current values: `operator-substitution`,
    /// `join-input-swap`, `estimate-delta`, `predicate-change`,
    /// `subtree-insert`, `subtree-delete`. Like error kinds, new slugs
    /// may be added; existing ones are never renamed.
    pub kind: String,
    /// Dotted child-index path to the anchor node in the *base* tree
    /// (`"root"`, `"root.0.1"`; inserts anchor at the position the new
    /// subtree takes in the alternative).
    pub path: String,
    /// Operator name at the anchor node (base side where it exists).
    pub op: String,
    /// One human-readable sentence describing the change.
    pub detail: String,
    /// This edit's contribution to the diff's informativeness score.
    pub weight: f64,
}

/// A completed plan diff: the classified changes, an informativeness
/// score for ranking alternatives, and the narrated comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffResponse {
    /// Which backend narrated the diff (`"rule-diff"`, …).
    pub backend: String,
    /// Informativeness: structural-change magnitude weighted by the
    /// estimated-cost delta. `0.0` iff the plans are structurally
    /// identical. Higher means the alternative is more worth showing a
    /// student; estimate jitter scores far below a join-algorithm
    /// change.
    pub score: f64,
    /// The classified changes, in base-tree pre-order.
    pub changes: Vec<DiffChange>,
    /// The structured narration of the comparison.
    pub narration: Narration,
    /// The narration rendered in the effective style of the request.
    pub text: String,
}

impl DiffResponse {
    /// Whether the two plans were structurally identical (estimates
    /// included).
    pub fn is_identical(&self) -> bool {
        self.changes.is_empty()
    }
}

/// A plan-diff backend: compares two plans and narrates the
/// differences. Object-safe so the serving layer can hold one behind
/// `Arc<dyn DiffTranslator>` next to the narration `Translator`.
pub trait DiffTranslator {
    /// Stable backend identifier (`"rule-diff"`, …).
    fn diff_backend(&self) -> &str;

    /// Diff and narrate one base/alternative pair.
    fn narrate_diff(&self, req: &DiffRequest) -> Result<DiffResponse, LanternError>;

    /// Diff one base against many alternatives, returning one result
    /// per alternative in input order (callers rank by
    /// [`DiffResponse::score`]). The default implementation reuses the
    /// base source per pair sequentially.
    fn narrate_diff_batch(
        &self,
        base: &PlanSource,
        alts: &[PlanSource],
        style: Option<RenderStyle>,
    ) -> Vec<Result<DiffResponse, LanternError>> {
        alts.iter()
            .map(|alt| {
                self.narrate_diff(&DiffRequest {
                    base: base.clone(),
                    alt: alt.clone(),
                    style,
                })
            })
            .collect()
    }
}

impl<T: DiffTranslator + ?Sized> DiffTranslator for std::sync::Arc<T> {
    fn diff_backend(&self) -> &str {
        (**self).diff_backend()
    }

    fn narrate_diff(&self, req: &DiffRequest) -> Result<DiffResponse, LanternError> {
        (**self).narrate_diff(req)
    }

    fn narrate_diff_batch(
        &self,
        base: &PlanSource,
        alts: &[PlanSource],
        style: Option<RenderStyle>,
    ) -> Vec<Result<DiffResponse, LanternError>> {
        (**self).narrate_diff_batch(base, alts, style)
    }
}

/// Map `items` across scoped worker threads behind an atomic
/// work-stealing index: items are claimed one at a time rather than
/// pre-partitioned into fixed chunks, so skewed item costs (one deep
/// join tree vs a dozen scans, one long act vs many short ones) don't
/// straggle a single worker. Each worker builds private state once via
/// `init` (a scratch arena, a pinned snapshot). Results come back in
/// item order. Worker count adapts to the machine
/// (`available_parallelism`, capped by the item count); on a
/// single-core host this degrades to an in-thread loop with no spawn
/// overhead.
pub fn work_steal_map<T, S, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&mut state, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("work-stealing worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

/// Fan a batch out across worker threads (scoped; no detached state):
/// [`work_steal_map`] over the requests. Results come back in request
/// order.
pub fn narrate_batch_parallel<T: Translator + Sync>(
    translator: &T,
    reqs: &[NarrationRequest],
) -> Vec<Result<NarrationResponse, LanternError>> {
    work_steal_map(reqs, || (), |(), r| translator.narrate(r))
}

/// The rule-based backend (RULE-LANTERN) behind the unified API.
///
/// Owns a handle to the POEM store. Every narration runs against an
/// immutable catalog snapshot (version-cached inside the store, so an
/// unchanged catalog is assembled once, not per call);
/// [`Translator::narrate_batch`] pins one snapshot for the whole batch
/// and fans out across threads.
#[derive(Debug, Clone)]
pub struct RuleTranslator {
    store: PoemStore,
    style: RenderStyle,
}

impl RuleTranslator {
    /// A rule backend over the given store, rendering numbered
    /// documents by default.
    pub fn new(store: PoemStore) -> Self {
        RuleTranslator {
            store,
            style: RenderStyle::default(),
        }
    }

    /// Change the default rendering style.
    pub fn with_style(mut self, style: RenderStyle) -> Self {
        self.style = style;
        self
    }

    /// The underlying store handle (e.g. to run POOL statements).
    pub fn store(&self) -> &PoemStore {
        &self.store
    }

    fn narrate_against<L: PoemLookup>(
        &self,
        req: &NarrationRequest,
        lookup: &L,
    ) -> Result<NarrationResponse, LanternError> {
        // Borrow already-parsed trees instead of deep-cloning them
        // through `resolve` — on the batch hot path the parse/clone is
        // the caller's, not ours.
        let narration = match &req.source {
            PlanSource::Tree(tree) => narrate_with_lookup(tree, lookup)?,
            serialized => narrate_with_lookup(&serialized.resolve()?, lookup)?,
        };
        Ok(NarrationResponse::new(
            self.backend(),
            narration,
            req.effective_style(self.style),
        ))
    }
}

impl Translator for RuleTranslator {
    fn backend(&self) -> &str {
        "rule"
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let snapshot = self.store.snapshot();
        self.narrate_against(req, &snapshot)
    }

    fn narrate_batch(
        &self,
        reqs: &[NarrationRequest],
    ) -> Vec<Result<NarrationResponse, LanternError>> {
        // One snapshot pinned for the whole batch: every request sees
        // the same catalog generation (even if a POOL writer lands
        // mid-batch), no per-request locking happens at all, and the
        // snapshot is shared read-only by all worker threads.
        let snapshot = self.store.snapshot();
        let shared = SnapshotRule {
            inner: self,
            snapshot: snapshot.as_ref(),
        };
        narrate_batch_parallel(&shared, reqs)
    }
}

/// Internal adapter binding a [`RuleTranslator`] to an already-taken
/// snapshot, so the parallel batch helper narrates lock-free.
struct SnapshotRule<'a> {
    inner: &'a RuleTranslator,
    snapshot: &'a PoemSnapshot,
}

impl Translator for SnapshotRule<'_> {
    fn backend(&self) -> &str {
        self.inner.backend()
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        self.inner.narrate_against(req, self.snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::PlanNode;
    use lantern_pool::{default_mssql_store, default_pg_store};

    const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}]"#;
    const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
        <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
        </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

    #[test]
    fn auto_detects_json_and_xml() {
        assert!(matches!(
            PlanSource::auto(PG_DOC).unwrap(),
            PlanSource::PgJson(_)
        ));
        assert!(matches!(
            PlanSource::auto(XML_DOC).unwrap(),
            PlanSource::SqlServerXml(_)
        ));
        assert!(matches!(
            PlanSource::auto("  \n { \"Plan\": {} }").unwrap(),
            PlanSource::PgJson(_)
        ));
    }

    #[test]
    fn auto_skips_bom_and_leading_whitespace_in_any_order() {
        // BOM first, whitespace first, and interleaved: all must sniff
        // correctly AND parse (the stored document drops the prefix).
        for doc in [
            format!("\u{feff}{PG_DOC}"),
            format!("\n\u{feff}{PG_DOC}"),
            format!("\u{feff}\n\t \u{feff}{PG_DOC}"),
            format!("   \r\n{PG_DOC}"),
        ] {
            let source = PlanSource::auto(doc.as_str()).unwrap();
            assert!(matches!(source, PlanSource::PgJson(_)), "{doc:?}");
            let tree = source.resolve().expect("prefix must be stripped");
            assert_eq!(tree.root.op, "Seq Scan");
        }
        let xml = format!("\u{feff}  {XML_DOC}");
        assert!(matches!(
            PlanSource::auto(xml.as_str()).unwrap(),
            PlanSource::SqlServerXml(_)
        ));
        // A BOM-only document is still empty input.
        assert_eq!(
            PlanSource::auto("\u{feff} \n").unwrap_err(),
            LanternError::EmptyInput
        );
    }

    #[test]
    fn auto_rejects_empty_and_unknown() {
        assert_eq!(PlanSource::auto("").unwrap_err(), LanternError::EmptyInput);
        assert_eq!(
            PlanSource::auto("   \t\n").unwrap_err(),
            LanternError::EmptyInput
        );
        match PlanSource::auto("EXPLAIN SELECT * FROM t").unwrap_err() {
            LanternError::UnknownFormat { snippet } => {
                assert!(snippet.starts_with("EXPLAIN"), "{snippet}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_json_is_a_parse_error() {
        let req = NarrationRequest::auto(r#"[{"Plan": {"Node Type": "Seq"#).unwrap();
        match req.resolve_tree().unwrap_err() {
            LanternError::Parse { format, .. } => assert_eq!(format, PlanFormat::PgJson),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn xml_without_relop_is_a_parse_error() {
        let req = NarrationRequest::auto("<ShowPlanXML><BatchSequence/></ShowPlanXML>").unwrap();
        match req.resolve_tree().unwrap_err() {
            LanternError::Parse { format, message } => {
                assert_eq!(format, PlanFormat::SqlServerXml);
                assert!(message.contains("RelOp"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rule_translator_narrates_all_source_kinds() {
        let rule = RuleTranslator::new(default_mssql_store());
        let from_json = rule
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        assert_eq!(from_json.backend, "rule");
        assert_eq!(
            from_json.text,
            "1. perform sequential scan on orders to get the final results."
        );
        let from_xml = rule
            .narrate(&NarrationRequest::auto(XML_DOC).unwrap())
            .unwrap();
        assert!(
            from_xml.text.contains("table scan on photoobj"),
            "{}",
            from_xml.text
        );
        let tree = PlanTree::new("pg", PlanNode::new("Seq Scan").on_relation("orders"));
        let from_tree = rule.narrate(&NarrationRequest::from_tree(&tree)).unwrap();
        assert_eq!(from_tree.narration, from_json.narration);
    }

    #[test]
    fn unknown_operator_is_structured() {
        let rule = RuleTranslator::new(default_pg_store());
        let err = rule
            .narrate(&NarrationRequest::auto(XML_DOC).unwrap())
            .unwrap_err();
        assert_eq!(
            err,
            LanternError::UnknownOperator {
                source: "mssql".into(),
                op: "Table Scan".into(),
            }
        );
    }

    #[test]
    fn per_request_style_overrides_default() {
        let rule = RuleTranslator::new(default_pg_store());
        let req = NarrationRequest::auto(PG_DOC)
            .unwrap()
            .with_style(RenderStyle::Bulleted);
        let resp = rule.narrate(&req).unwrap();
        assert!(resp.text.starts_with("- perform sequential scan"));
        assert!(resp.render(RenderStyle::Numbered).starts_with("1. "));
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let rule = RuleTranslator::new(default_pg_store());
        let reqs: Vec<NarrationRequest> = (0..8)
            .map(|i| {
                let tree = PlanTree::new(
                    "pg",
                    PlanNode::new("Sort")
                        .with_child(PlanNode::new("Seq Scan").on_relation(format!("t{i}"))),
                );
                NarrationRequest::from_tree(tree)
            })
            .collect();
        let sequential: Vec<_> = reqs.iter().map(|r| rule.narrate(r)).collect();
        let batched = rule.narrate_batch(&reqs);
        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.as_ref().unwrap().narration, s.as_ref().unwrap().narration);
        }
        // Order preserved: each narration mentions its own relation.
        for (i, b) in batched.iter().enumerate() {
            assert!(b.as_ref().unwrap().text.contains(&format!("t{i}")));
        }
    }

    #[test]
    fn batch_reports_per_request_errors() {
        let rule = RuleTranslator::new(default_pg_store());
        let reqs = vec![
            NarrationRequest::pg_json(PG_DOC),
            NarrationRequest::pg_json("not json"),
            NarrationRequest::pg_json(PG_DOC),
        ];
        let out = rule.narrate_batch(&reqs);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(LanternError::Parse { .. })));
        assert!(out[2].is_ok());
    }

    #[test]
    fn error_kinds_and_statuses_are_stable() {
        // Every variant has a distinct kind string; the service wire
        // format (lantern-serve, docs/SERVING.md) depends on these
        // exact values, so this test is the rename tripwire.
        let variants = [
            (LanternError::EmptyInput, "empty_input", 400),
            (
                LanternError::UnknownFormat {
                    snippet: "x".into(),
                },
                "unknown_format",
                400,
            ),
            (
                LanternError::Parse {
                    format: PlanFormat::PgJson,
                    message: "m".into(),
                },
                "parse",
                400,
            ),
            (
                LanternError::UnknownOperator {
                    source: "pg".into(),
                    op: "X".into(),
                },
                "unknown_operator",
                422,
            ),
            (
                LanternError::Plan {
                    message: "m".into(),
                },
                "plan",
                422,
            ),
            (
                LanternError::Backend {
                    backend: "neuron".into(),
                    message: "m".into(),
                },
                "backend",
                501,
            ),
            (
                LanternError::Config {
                    message: "m".into(),
                },
                "config",
                500,
            ),
        ];
        let mut kinds: Vec<&str> = variants.iter().map(|(e, ..)| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), variants.len(), "kinds must be distinct");
        for (err, kind, status) in &variants {
            assert_eq!(err.kind(), *kind);
            assert_eq!(err.http_status(), *status);
        }
    }

    #[test]
    fn error_displays_are_informative() {
        let e = LanternError::Backend {
            backend: "neuron".into(),
            message: "no rule for 'Table Scan'".into(),
        };
        assert!(e.to_string().contains("neuron"));
        assert!(LanternError::EmptyInput.to_string().contains("empty"));
        let core: CoreError = LanternError::UnknownOperator {
            source: "pg".into(),
            op: "X".into(),
        }
        .into();
        assert!(matches!(core, CoreError::UnknownOperator { .. }));
    }
}
