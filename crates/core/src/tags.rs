//! The special-tag vocabulary of paper Table 1, used to strip
//! schema-dependent values (relation names, predicates, conditions…)
//! from training labels and re-substitute them after decoding.

/// The tag set of Table 1.
pub const TAGS: &[&str] = &["<I>", "<F>", "<C>", "<T>", "<TN>", "<A>", "<G>"];

/// An ordered tag → concrete-value binding list, recorded while a
/// narration step is generated in tagged style.
pub type TagBinding = Vec<(String, String)>;

/// Replace each tag occurrence in `text` with its bound concrete value,
/// consuming bindings left to right (tags may repeat — e.g. two `<T>`s
/// in a join step).
pub fn substitute_tags(text: &str, bindings: &TagBinding) -> String {
    let mut out = text.to_string();
    for (tag, value) in bindings {
        if let Some(pos) = out.find(tag.as_str()) {
            out.replace_range(pos..pos + tag.len(), value);
        }
    }
    out
}

/// Inverse of [`substitute_tags`]: replace the first occurrence of each
/// bound concrete value with its tag (used to re-abstract externally
/// produced text).
pub fn abstract_tags(text: &str, bindings: &TagBinding) -> String {
    let mut out = text.to_string();
    for (tag, value) in bindings {
        if value.is_empty() {
            continue;
        }
        if let Some(pos) = out.find(value.as_str()) {
            out.replace_range(pos..pos + value.len(), tag);
        }
    }
    out
}

/// True if `token` is one of the Table-1 tags.
pub fn is_tag(token: &str) -> bool {
    TAGS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitute_in_order() {
        let bindings: TagBinding = vec![
            ("<T>".into(), "inproceedings".into()),
            ("<T>".into(), "T1".into()),
            ("<C>".into(), "((i.k) = (p.k))".into()),
        ];
        let s = substitute_tags(
            "hash <T> and perform hash join on <T> and T1 on condition <C>",
            &bindings,
        );
        // First <T> -> inproceedings, second <T> -> T1.
        assert_eq!(
            s,
            "hash inproceedings and perform hash join on T1 and T1 on condition ((i.k) = (p.k))"
        );
    }

    #[test]
    fn round_trip_abstract_then_substitute() {
        let bindings: TagBinding = vec![
            ("<T>".into(), "publication".into()),
            ("<F>".into(), "(title containing 'July')".into()),
            ("<TN>".into(), "T1".into()),
        ];
        let concrete = "perform sequential scan on publication and filtering on \
                        (title containing 'July') to get the intermediate relation T1.";
        let tagged = abstract_tags(concrete, &bindings);
        assert_eq!(
            tagged,
            "perform sequential scan on <T> and filtering on <F> to get the intermediate relation <TN>."
        );
        assert_eq!(substitute_tags(&tagged, &bindings), concrete);
    }

    #[test]
    fn unbound_tags_left_alone() {
        let s = substitute_tags("scan <T> end", &vec![]);
        assert_eq!(s, "scan <T> end");
    }

    #[test]
    fn tag_predicate() {
        assert!(is_tag("<T>"));
        assert!(is_tag("<TN>"));
        assert!(!is_tag("<X>"));
        assert!(!is_tag("T"));
    }
}
