//! RULE-LANTERN's narration procedure (paper §5.5, Algorithm 1).
//!
//! The plan's LOT is traversed post-order; clustered auxiliary/critical
//! pairs are narrated as a single step through the composition operator
//! `∘`; every non-leaf (or filtered) step is given an intermediate
//! result identifier `T1, T2, …` that later steps refer to; the root
//! step ends with "to get the final results."
//!
//! Each step is generated in *two* synchronized renderings: the
//! concrete text shown to learners, and the tag-abstracted text of
//! Table 1 used as neural training labels — plus the ordered tag
//! bindings linking them.

use crate::cluster::{cluster_pairs, clustered_aux, Cluster};
use crate::lot::{build_lot, CoreError, LotNode};
use crate::tags::TagBinding;
use lantern_plan::PlanTree;
use lantern_pool::{PoemLookup, PoemStore};

/// One narration step (= one *act*, in §6.2 terminology).
#[derive(Debug, Clone, PartialEq)]
pub struct NarrationStep {
    /// 1-based step number.
    pub index: usize,
    /// Vendor operator names covered by this step (auxiliary first
    /// when the step narrates a cluster).
    pub ops: Vec<String>,
    /// Concrete learner-facing sentence.
    pub text: String,
    /// Tag-abstracted sentence (Table 1).
    pub tagged: String,
    /// Ordered tag bindings: substituting them into `tagged` yields
    /// `text`.
    pub bindings: TagBinding,
}

/// A complete narration of one QEP.
#[derive(Debug, Clone, PartialEq)]
pub struct Narration {
    steps: Vec<NarrationStep>,
}

/// How a [`Narration`] is rendered into one string (the presentation
/// dimension of the paper's US 6 survey).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenderStyle {
    /// Numbered steps, one per line — the document format 38/43
    /// learners preferred in US 6.
    #[default]
    Numbered,
    /// Unnumbered sentences joined into one paragraph.
    Paragraph,
    /// Bulleted list, one step per line.
    Bulleted,
}

impl Narration {
    /// Assemble a narration from already-built steps (used by the
    /// neural and baseline backends and by deserialization).
    pub fn from_steps(steps: Vec<NarrationStep>) -> Self {
        Narration { steps }
    }

    /// Assemble a narration from bare sentences: steps are numbered in
    /// order, with no operator coverage, tag abstraction, or bindings
    /// (backends that do not produce the two synchronized renderings).
    pub fn from_sentences<I>(sentences: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        Narration {
            steps: sentences
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let text: String = s.into();
                    NarrationStep {
                        index: i + 1,
                        ops: Vec::new(),
                        tagged: text.clone(),
                        text,
                        bindings: TagBinding::new(),
                    }
                })
                .collect(),
        }
    }

    /// The steps in narration order.
    pub fn steps(&self) -> &[NarrationStep] {
        &self.steps
    }

    /// Document-style rendering: numbered steps, one per line (the
    /// presentation format 38/43 learners preferred in US 6).
    pub fn text(&self) -> String {
        self.render(RenderStyle::Numbered)
    }

    /// Render the narration in the requested [`RenderStyle`].
    pub fn render(&self, style: RenderStyle) -> String {
        match style {
            RenderStyle::Numbered => self
                .steps
                .iter()
                .map(|s| format!("{}. {}", s.index, s.text))
                .collect::<Vec<_>>()
                .join("\n"),
            RenderStyle::Paragraph => self
                .steps
                .iter()
                .map(|s| s.text.as_str())
                .collect::<Vec<_>>()
                .join(" "),
            RenderStyle::Bulleted => self
                .steps
                .iter()
                .map(|s| format!("- {}", s.text))
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    /// All concrete sentences, unnumbered.
    pub fn sentences(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.text.as_str()).collect()
    }
}

/// The rule-based QEP-to-natural-language translator.
pub struct RuleLantern<'a> {
    store: &'a PoemStore,
}

impl<'a> RuleLantern<'a> {
    /// Create a translator over a POEM store.
    pub fn new(store: &'a PoemStore) -> Self {
        RuleLantern { store }
    }

    /// Narrate a plan (paper Algorithm 1).
    ///
    /// Takes **one** read snapshot of the POEM store and threads it
    /// through the whole LOT construction, instead of re-acquiring the
    /// store's `RwLock` for every plan node.
    pub fn narrate(&self, tree: &PlanTree) -> Result<Narration, CoreError> {
        let snapshot = self.store.snapshot();
        narrate_with_lookup(tree, &snapshot)
    }
}

/// Narrate a plan against any [`PoemLookup`] (paper Algorithm 1).
///
/// This is the hot-path entry point: batch pipelines snapshot the store
/// once and call this for every plan, so no per-narration locking or
/// catalog assembly happens at all.
pub fn narrate_with_lookup<L: PoemLookup>(
    tree: &PlanTree,
    lookup: &L,
) -> Result<Narration, CoreError> {
    let lot = build_lot(tree, lookup)?;
    let clusters = cluster_pairs(&lot.root);
    let mut ctx = Ctx {
        steps: Vec::new(),
        t_counter: 0,
        clusters,
    };
    visit(&lot.root, &mut Vec::new(), true, &mut ctx)?;
    Ok(Narration { steps: ctx.steps })
}

struct Ctx {
    steps: Vec<NarrationStep>,
    t_counter: usize,
    clusters: Vec<Cluster>,
}

/// Builder that renders the concrete and tagged texts in lockstep.
#[derive(Default)]
struct Emit {
    text: String,
    tagged: String,
    bindings: TagBinding,
}

impl Emit {
    fn lit(&mut self, s: &str) {
        self.text.push_str(s);
        self.tagged.push_str(s);
    }

    fn val(&mut self, tag: &str, concrete: &str) {
        self.text.push_str(concrete);
        self.tagged.push_str(tag);
        self.bindings.push((tag.to_string(), concrete.to_string()));
    }
}

/// Returns the name by which the parent refers to this node's output:
/// an intermediate identifier `Tk`, or the base relation name for an
/// unfiltered leaf scan.
fn visit(
    node: &LotNode,
    path: &mut Vec<usize>,
    is_root: bool,
    ctx: &mut Ctx,
) -> Result<String, CoreError> {
    // Resolve the clustered auxiliary child (if any), then recurse into
    // the effective children (the clustered auxiliary is skipped; its
    // child stands in for it) in post-order. The path buffer is shared
    // down the recursion instead of re-allocated per child.
    let aux_idx = clustered_aux(&ctx.clusters, path);
    let mut aux_node: Option<&LotNode> = None;
    let mut child_names = Vec::with_capacity(node.children.len());
    for (i, child) in node.children.iter().enumerate() {
        if Some(i) == aux_idx {
            aux_node = Some(child);
            let inner = child.children.first().ok_or_else(|| {
                CoreError::PlanError(format!("auxiliary operator {} has no child", child.plan.op))
            })?;
            path.push(i);
            path.push(0);
            child_names.push(visit(inner, path, false, ctx)?);
            path.pop();
            path.pop();
        } else {
            path.push(i);
            child_names.push(visit(child, path, false, ctx)?);
            path.pop();
        }
    }

    // Template for this step: composed when an auxiliary was clustered.
    // The composition equals `aux.poem.compose_with(&node.poem, None)`
    // but reuses the labels already derived during LOT annotation.
    let template = match aux_node {
        Some(aux) => format!("{} and {}", aux.label, node.label),
        None => node.label.clone(),
    };

    let mut e = Emit::default();
    render_template(&template, node, &child_names, aux_idx, &mut e);

    // Index scans mention the index used (tag <I>).
    if let Some(index_name) = &node.plan.index_name {
        e.lit(" using index ");
        e.val("<I>", index_name);
    }
    // Grouping keys (tag <G>), for aggregates.
    if !node.plan.group_keys.is_empty() {
        e.lit(" with grouping on attribute ");
        e.val("<G>", &node.plan.group_keys.join(", "));
    }
    // Standalone sorts mention their keys (tag <A>).
    if aux_node.is_none() && !node.plan.sort_keys.is_empty() && node.poem.name == "sort" {
        e.lit(" by ");
        e.val("<A>", &node.plan.sort_keys.join(", "));
    }
    // Filters / HAVING (tag <F>).
    if let Some(filter) = &node.plan.filter {
        e.lit(" and filtering on ");
        e.val("<F>", &humanize_predicate(filter));
    }

    // Intermediate identifier / final ending (Algorithm 1 lines 10-14).
    let leaf_passthrough = node.children.is_empty() && node.plan.filter.is_none();
    let name = if is_root {
        e.lit(" to get the final results.");
        String::new()
    } else if leaf_passthrough {
        e.lit(".");
        node.plan
            .relation
            .clone()
            .unwrap_or_else(|| node.name.clone())
    } else {
        ctx.t_counter += 1;
        let t = format!("T{}", ctx.t_counter);
        e.lit(" to get the intermediate relation ");
        e.val("<TN>", &t);
        e.lit(".");
        t
    };

    let mut ops = Vec::new();
    if let Some(aux) = aux_node {
        ops.push(aux.plan.op.clone());
    }
    ops.push(node.plan.op.clone());
    ctx.steps.push(NarrationStep {
        index: ctx.steps.len() + 1,
        ops,
        text: e.text,
        tagged: e.tagged,
        bindings: e.bindings,
    });
    Ok(name)
}

/// Substitute `$R1$`, `$R2$`, `$cond$` in a POOL template.
///
/// Convention (see `PoemObject::template`): for binary operators `$R1$`
/// is the input flowing through the clustered auxiliary operator (the
/// hashed/sorted side) and `$R2$` the other input — so `hash $R1$ and
/// perform hash join on $R2$ and $R1$` hashes the build side, as in
/// the paper's Example 5.1. Without an auxiliary, `$R2$` is the first
/// child and `$R1$` the second. Inputs are emitted with tag `<T>`.
fn render_template(
    template: &str,
    node: &LotNode,
    child_names: &[String],
    aux_idx: Option<usize>,
    e: &mut Emit,
) {
    let (r1_pos, r2_pos) = match aux_idx {
        Some(0) => (0, 1),
        _ => (1, 0),
    };
    let r1: &str = match child_names.len() {
        0 => node.plan.relation.as_deref().unwrap_or("its input"),
        1 => &child_names[0],
        _ => &child_names[r1_pos],
    };
    let r2: &str = match child_names.len() {
        0 | 1 => "its input",
        _ => &child_names[r2_pos],
    };

    let mut rest = template;
    loop {
        let next = ["$R1$", "$R2$", "$cond$"]
            .iter()
            .filter_map(|p| rest.find(p).map(|i| (i, *p)))
            .min_by_key(|(i, _)| *i);
        match next {
            None => {
                e.lit(rest);
                return;
            }
            Some((i, placeholder)) => {
                e.lit(&rest[..i]);
                match placeholder {
                    "$R1$" => e.val("<T>", r1),
                    "$R2$" => e.val("<T>", r2),
                    _ => match &node.plan.join_cond {
                        Some(c) => e.val("<C>", c),
                        // A condition-bearing template on a plan node
                        // without a condition (cross join): drop the
                        // dangling " on condition " connective.
                        None => {
                            truncate_trailing(e, " on condition ");
                        }
                    },
                }
                rest = &rest[i + placeholder.len()..];
            }
        }
    }
}

fn truncate_trailing(e: &mut Emit, suffix: &str) {
    if e.text.ends_with(suffix) {
        e.text.truncate(e.text.len() - suffix.len());
    }
    if e.tagged.ends_with(suffix) {
        e.tagged.truncate(e.tagged.len() - suffix.len());
    }
}

/// Make predicates read naturally (the paper renders
/// `title LIKE '%July%'` as `(title containing 'July')` and
/// `count(*)` as `count(all)`).
pub fn humanize_predicate(pred: &str) -> String {
    let mut s = pred.trim().to_string();
    // LIKE patterns.
    while let Some(pos) = find_ci(&s, " LIKE '") {
        let pat_start = pos + " LIKE '".len();
        let Some(rel_end) = s[pat_start..].find('\'') else {
            break;
        };
        let pat_end = pat_start + rel_end;
        let pattern = s[pat_start..pat_end].to_string();
        let replacement = match (pattern.starts_with('%'), pattern.ends_with('%')) {
            (true, true) => format!(" containing '{}'", pattern.trim_matches('%')),
            (false, true) => format!(" starting with '{}'", pattern.trim_end_matches('%')),
            (true, false) => format!(" ending with '{}'", pattern.trim_start_matches('%')),
            (false, false) => format!(" matching '{pattern}'"),
        };
        s.replace_range(pos..pat_end + 1, &replacement);
    }
    s = s
        .replace("COUNT(*)", "count(all)")
        .replace("count(*)", "count(all)");
    // The paper parenthesizes filter conditions.
    if s.starts_with('(') && s.ends_with(')') {
        s
    } else {
        format!("({s})")
    }
}

fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() {
        return Some(0);
    }
    if h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::substitute_tags;
    use lantern_plan::PlanNode;
    use lantern_pool::default_pg_store;

    /// The paper's Figure 4 tree (Examples 3.1 / 5.1).
    fn figure_4() -> PlanTree {
        PlanTree::new(
            "pg",
            PlanNode::new("Unique").with_child({
                let mut agg = PlanNode::new("Aggregate");
                agg.group_keys = vec!["i.proceeding_key".to_string()];
                agg.filter = Some("count(*) > 200".to_string());
                agg.with_child({
                    let mut sort = PlanNode::new("Sort");
                    sort.sort_keys = vec!["i.proceeding_key".to_string()];
                    sort.with_child(
                        PlanNode::new("Hash Join")
                            .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                            .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                            .with_child(
                                PlanNode::new("Hash").with_child(
                                    PlanNode::new("Seq Scan")
                                        .on_relation("publication")
                                        .with_filter("title LIKE '%July%'"),
                                ),
                            ),
                    )
                })
            }),
        )
    }

    #[test]
    fn example_5_1_narration() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        let steps = narration.steps();
        assert_eq!(steps.len(), 5, "{}", narration.text());
        // Step 1: unfiltered scan — no intermediate identifier.
        assert_eq!(steps[0].text, "perform sequential scan on inproceedings.");
        // Step 2: filtered scan -> T1.
        assert_eq!(
            steps[1].text,
            "perform sequential scan on publication and filtering on \
             (title containing 'July') to get the intermediate relation T1."
        );
        // Step 3: hash+hash join composed; hashes T1, probes inproceedings.
        assert_eq!(
            steps[2].text,
            "hash T1 and perform hash join on inproceedings and T1 on condition \
             ((i.proceeding_key) = (p.pub_key)) to get the intermediate relation T2."
        );
        // Step 4: sort+aggregate composed with grouping and having.
        assert_eq!(
            steps[3].text,
            "sort T2 and perform aggregate on T2 with grouping on attribute \
             i.proceeding_key and filtering on (count(all) > 200) \
             to get the intermediate relation T3."
        );
        // Step 5: duplicate removal, final.
        assert_eq!(
            steps[4].text,
            "perform duplicate removal on T3 to get the final results."
        );
    }

    #[test]
    fn tagged_rendering_round_trips() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        for step in narration.steps() {
            assert_eq!(
                substitute_tags(&step.tagged, &step.bindings),
                step.text,
                "tagged: {}",
                step.tagged
            );
        }
        // Spot-check one abstraction.
        assert_eq!(
            narration.steps()[1].tagged,
            "perform sequential scan on <T> and filtering on <F> \
             to get the intermediate relation <TN>."
        );
    }

    #[test]
    fn ops_cover_clusters() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        assert_eq!(narration.steps()[2].ops, vec!["Hash", "Hash Join"]);
        assert_eq!(narration.steps()[3].ops, vec!["Sort", "Aggregate"]);
        assert_eq!(narration.steps()[4].ops, vec!["Unique"]);
    }

    #[test]
    fn document_text_is_numbered() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        let text = narration.text();
        assert!(text.starts_with("1. perform sequential scan"));
        assert!(text.contains("\n5. perform duplicate removal"));
    }

    #[test]
    fn humanize_like_patterns() {
        assert_eq!(
            humanize_predicate("title LIKE '%July%'"),
            "(title containing 'July')"
        );
        assert_eq!(
            humanize_predicate("name LIKE 'Jo%'"),
            "(name starting with 'Jo')"
        );
        assert_eq!(
            humanize_predicate("name LIKE '%son'"),
            "(name ending with 'son')"
        );
        assert_eq!(humanize_predicate("count(*) > 200"), "(count(all) > 200)");
        assert_eq!(humanize_predicate("(a > 1)"), "(a > 1)");
    }

    #[test]
    fn cross_join_drops_dangling_condition() {
        let store = default_pg_store();
        let tree = PlanTree::new(
            "pg",
            PlanNode::new("Nested Loop")
                .with_child(PlanNode::new("Seq Scan").on_relation("region"))
                .with_child(PlanNode::new("Seq Scan").on_relation("part")),
        );
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        let last = narration.steps().last().unwrap();
        assert!(!last.text.contains("on condition"), "{}", last.text);
        assert!(last
            .text
            .contains("perform nested loop join on region and part"));
    }

    #[test]
    fn merge_join_with_two_sorts_narrates_second_sort_standalone() {
        let store = default_pg_store();
        let mut sort_a = PlanNode::new("Sort");
        sort_a.sort_keys = vec!["a.x".into()];
        let mut sort_b = PlanNode::new("Sort");
        sort_b.sort_keys = vec!["b.y".into()];
        let tree = PlanTree::new(
            "pg",
            PlanNode::new("Merge Join")
                .with_join_cond("((a.x) = (b.y))")
                .with_child(sort_a.with_child(PlanNode::new("Seq Scan").on_relation("a")))
                .with_child(sort_b.with_child(PlanNode::new("Seq Scan").on_relation("b"))),
        );
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        let text = narration.text();
        // First sort composed into the merge join step; second sort is
        // its own step producing an intermediate.
        assert!(
            text.contains("sort b by b.y to get the intermediate relation T1"),
            "{text}"
        );
        // The clustered sort covers the left input `a`; the template's
        // $R1$ binds to the sorted side, $R2$ to the other input.
        assert!(
            text.contains("sort a and perform merge join on T1 and a"),
            "{text}"
        );
    }

    #[test]
    fn index_scan_mentions_index() {
        let store = default_pg_store();
        let mut scan = PlanNode::new("Index Scan").on_relation("orders");
        scan.index_name = Some("orders_o_orderkey_idx".into());
        scan.filter = Some("o_orderkey < 100".into());
        let tree = PlanTree::new("pg", scan);
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        let step = &narration.steps()[0];
        assert!(
            step.text.contains("using index orders_o_orderkey_idx"),
            "{}",
            step.text
        );
        assert!(step.tagged.contains("<I>"));
    }

    #[test]
    fn mssql_plan_narrates_with_mssql_store() {
        use lantern_pool::default_mssql_store;
        let store = default_mssql_store();
        let tree = PlanTree::new(
            "mssql",
            PlanNode::new("Hash Match")
                .with_join_cond("((s.bestobjid) = (p.objid))")
                .with_child(PlanNode::new("Table Scan").on_relation("photoobj"))
                .with_child(
                    PlanNode::new("Hash Build")
                        .with_child(PlanNode::new("Table Scan").on_relation("specobj")),
                ),
        );
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        let text = narration.text();
        assert!(
            text.contains("hash specobj and perform hash match join"),
            "{text}"
        );
    }

    #[test]
    fn single_node_plan_is_final_step() {
        let store = default_pg_store();
        let tree = PlanTree::new("pg", PlanNode::new("Seq Scan").on_relation("nation"));
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        assert_eq!(narration.steps().len(), 1);
        assert_eq!(
            narration.steps()[0].text,
            "perform sequential scan on nation to get the final results."
        );
    }
}
