//! # lantern-core
//!
//! RULE-LANTERN (paper §5): the rule-based translator from a query
//! execution plan to a step-by-step natural-language narration, plus
//! the shared machinery NEURAL-LANTERN builds on.
//!
//! * [`lot`] — the *language-annotated operator tree* (§5.3): plan
//!   nodes annotated with POOL-derived description templates.
//! * [`cluster`] — auxiliary/critical node clustering and the
//!   composition operator `∘` (§5.4).
//! * [`narrate`] — Algorithm 1: post-order narration with intermediate
//!   result identifiers (T1, T2, …) and the four-layer narration model
//!   (§5.1).
//! * [`acts`] — decomposition of a plan into *acts* (§6.2), the
//!   operator-level training units of NEURAL-LANTERN.
//! * [`tags`] — the special-tag abstraction of Table 1 (`<T>`, `<F>`,
//!   `<C>`, …) used to strip schema-dependent values from training
//!   labels and re-substitute them after decoding.
//! * [`api`] — the unified translator API: the [`Translator`] trait all
//!   backends (rule, neural, NEURON baseline) implement, with
//!   source-agnostic [`PlanSource`] inputs, structured
//!   [`LanternError`]s, and batched narration.
//! * [`wire`] — the stable JSON wire format for [`Narration`]s.
//! * [`Lantern`] — the end-to-end facade gluing plan parsing, the POEM
//!   store, and the translators together (now a thin layer over
//!   [`api`]).

pub mod acts;
pub mod api;
pub mod cluster;
pub mod facade;
pub mod lot;
pub mod narrate;
pub mod tags;
pub mod wire;

pub use acts::{decompose_acts, Act};
pub use api::{
    narrate_batch_parallel, work_steal_map, DiffChange, DiffRequest, DiffResponse, DiffTranslator,
    LanternError, NarrationRequest, NarrationResponse, PlanFormat, PlanSource, RuleTranslator,
    Translator,
};
pub use cluster::{cluster_pairs, Cluster};
pub use facade::Lantern;
pub use lot::{build_lot, CoreError, LotNode, LotTree};
pub use narrate::{narrate_with_lookup, Narration, NarrationStep, RenderStyle, RuleLantern};
pub use tags::{abstract_tags, substitute_tags, TagBinding};
