//! Auxiliary/critical node clustering (paper §5.4): pair each critical
//! node with an auxiliary child whose POEM `target` points at it, so
//! the pair is narrated as one step via the composition operator `∘`.

use crate::lot::LotNode;

/// One auxiliary/critical pair, addressed by the critical node's path
/// from the root and the index of the auxiliary child within it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Child-index path of the critical node from the root.
    pub critical_path: Vec<usize>,
    /// Index of the auxiliary child inside the critical node.
    pub aux_child: usize,
}

/// Compute the cluster set of a LOT (paper's `Cluster(T_L, P)`).
///
/// For each node, at most **one** auxiliary child is clustered (the
/// first, in child order); additional auxiliary children — e.g. the
/// second `Sort` under a `Merge Join` — are narrated as standalone
/// steps, which keeps the composition operator binary as the paper
/// defines it.
pub fn cluster_pairs(root: &LotNode) -> Vec<Cluster> {
    let mut out = Vec::new();
    walk(root, &mut Vec::new(), &mut out);
    out
}

fn walk(node: &LotNode, path: &mut Vec<usize>, out: &mut Vec<Cluster>) {
    for (i, child) in node.children.iter().enumerate() {
        if child.poem.is_auxiliary() && child.poem.targets_op(&node.plan.op) {
            out.push(Cluster {
                critical_path: path.clone(),
                aux_child: i,
            });
            break; // one aux per critical
        }
    }
    for (i, child) in node.children.iter().enumerate() {
        path.push(i);
        walk(child, path, out);
        path.pop();
    }
}

/// Look up whether `path`'s node has a clustered auxiliary child, and
/// which one.
pub fn clustered_aux(clusters: &[Cluster], path: &[usize]) -> Option<usize> {
    clusters
        .iter()
        .find(|c| c.critical_path == path)
        .map(|c| c.aux_child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lot::build_lot;
    use lantern_plan::{PlanNode, PlanTree};
    use lantern_pool::default_pg_store;

    fn lot(root: PlanNode) -> crate::lot::LotTree {
        build_lot(&PlanTree::new("pg", root), &default_pg_store()).unwrap()
    }

    #[test]
    fn hash_under_hash_join_clusters() {
        let t = lot(PlanNode::new("Hash Join")
            .with_child(PlanNode::new("Seq Scan").on_relation("a"))
            .with_child(
                PlanNode::new("Hash").with_child(PlanNode::new("Seq Scan").on_relation("b")),
            ));
        let c = cluster_pairs(&t.root);
        assert_eq!(
            c,
            vec![Cluster {
                critical_path: vec![],
                aux_child: 1
            }]
        );
        assert_eq!(clustered_aux(&c, &[]), Some(1));
        assert_eq!(clustered_aux(&c, &[0]), None);
    }

    #[test]
    fn sort_under_aggregate_clusters() {
        let t = lot(PlanNode::new("Aggregate").with_child(
            PlanNode::new("Sort").with_child(PlanNode::new("Seq Scan").on_relation("a")),
        ));
        let c = cluster_pairs(&t.root);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].aux_child, 0);
    }

    #[test]
    fn sort_under_hash_join_does_not_cluster() {
        // Sort targets mergejoin/aggregate/unique, not hash join.
        let t = lot(PlanNode::new("Hash Join")
            .with_child(
                PlanNode::new("Sort").with_child(PlanNode::new("Seq Scan").on_relation("a")),
            )
            .with_child(PlanNode::new("Seq Scan").on_relation("b")));
        assert!(cluster_pairs(&t.root).is_empty());
    }

    #[test]
    fn merge_join_clusters_only_first_sort() {
        let t = lot(PlanNode::new("Merge Join")
            .with_child(
                PlanNode::new("Sort").with_child(PlanNode::new("Seq Scan").on_relation("a")),
            )
            .with_child(
                PlanNode::new("Sort").with_child(PlanNode::new("Seq Scan").on_relation("b")),
            ));
        let c = cluster_pairs(&t.root);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].aux_child, 0);
    }

    #[test]
    fn nested_clusters_found_at_depth() {
        let t = lot(PlanNode::new("Unique").with_child(
            PlanNode::new("Aggregate").with_child(
                PlanNode::new("Sort").with_child(
                    PlanNode::new("Hash Join")
                        .with_child(PlanNode::new("Seq Scan").on_relation("a"))
                        .with_child(
                            PlanNode::new("Hash")
                                .with_child(PlanNode::new("Seq Scan").on_relation("b")),
                        ),
                ),
            ),
        ));
        let c = cluster_pairs(&t.root);
        // Aggregate+Sort at path [0]; Hash Join+Hash at path [0,0,0].
        assert_eq!(c.len(), 2);
        assert!(c.contains(&Cluster {
            critical_path: vec![0],
            aux_child: 0
        }));
        assert!(c.contains(&Cluster {
            critical_path: vec![0, 0, 0],
            aux_child: 1
        }));
    }
}
