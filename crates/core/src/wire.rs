//! Stable JSON wire format for narrations, so service responses can be
//! serialized, stored, and replayed across versions. The shape is:
//!
//! ```json
//! {"steps": [{"index": 1,
//!             "ops": ["Hash", "Hash Join"],
//!             "text": "hash T1 and ...",
//!             "tagged": "hash <T> and ...",
//!             "bindings": [["<T>", "T1"]]}]}
//! ```
//!
//! Serialization uses the in-tree JSON value model (`lantern_text`), so
//! the output is deterministic (object keys are sorted).

use crate::narrate::{Narration, NarrationStep};
use crate::tags::TagBinding;
use lantern_text::json::{JsonError, JsonValue};
use std::collections::BTreeMap;

fn shape_err(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

fn string_field(obj: &JsonValue, key: &str) -> Result<String, JsonError> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| shape_err(format!("missing string field '{key}'")))
}

impl NarrationStep {
    /// The step as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj = BTreeMap::new();
        obj.insert("index".to_string(), JsonValue::Number(self.index as f64));
        obj.insert(
            "ops".to_string(),
            JsonValue::Array(
                self.ops
                    .iter()
                    .map(|o| JsonValue::String(o.clone()))
                    .collect(),
            ),
        );
        obj.insert("text".to_string(), JsonValue::String(self.text.clone()));
        obj.insert("tagged".to_string(), JsonValue::String(self.tagged.clone()));
        obj.insert(
            "bindings".to_string(),
            JsonValue::Array(
                self.bindings
                    .iter()
                    .map(|(tag, value)| {
                        JsonValue::Array(vec![
                            JsonValue::String(tag.clone()),
                            JsonValue::String(value.clone()),
                        ])
                    })
                    .collect(),
            ),
        );
        JsonValue::Object(obj)
    }

    /// Parse one step from its JSON value.
    pub fn from_json_value(v: &JsonValue) -> Result<NarrationStep, JsonError> {
        let index_raw = v
            .get("index")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| shape_err("missing numeric field 'index'"))?;
        if index_raw < 0.0 || index_raw.fract() != 0.0 || index_raw > usize::MAX as f64 {
            return Err(shape_err("'index' must be a non-negative integer"));
        }
        let index = index_raw as usize;
        let ops = match v.get("ops") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|o| {
                    o.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| shape_err("non-string entry in 'ops'"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(shape_err("missing array field 'ops'")),
        };
        let mut bindings = TagBinding::new();
        match v.get("bindings") {
            Some(JsonValue::Array(items)) => {
                for pair in items {
                    match pair.as_array() {
                        Some([tag, value]) => match (tag.as_str(), value.as_str()) {
                            (Some(t), Some(val)) => bindings.push((t.to_string(), val.to_string())),
                            _ => return Err(shape_err("non-string binding pair")),
                        },
                        _ => return Err(shape_err("binding entry is not a [tag, value] pair")),
                    }
                }
            }
            _ => return Err(shape_err("missing array field 'bindings'")),
        }
        Ok(NarrationStep {
            index,
            ops,
            text: string_field(v, "text")?,
            tagged: string_field(v, "tagged")?,
            bindings,
        })
    }
}

impl Narration {
    /// The narration as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        let mut obj = BTreeMap::new();
        obj.insert(
            "steps".to_string(),
            JsonValue::Array(
                self.steps()
                    .iter()
                    .map(NarrationStep::to_json_value)
                    .collect(),
            ),
        );
        JsonValue::Object(obj)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_compact()
    }

    /// Parse a narration from its JSON wire form.
    pub fn from_json(doc: &str) -> Result<Narration, JsonError> {
        let value = JsonValue::parse(doc)?;
        let steps = match value.get("steps") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(NarrationStep::from_json_value)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(shape_err("missing array field 'steps'")),
        };
        Ok(Narration::from_steps(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::narrate::RuleLantern;
    use lantern_plan::{PlanNode, PlanTree};
    use lantern_pool::default_pg_store;

    fn figure_4() -> PlanTree {
        PlanTree::new(
            "pg",
            PlanNode::new("Aggregate").with_child(
                PlanNode::new("Hash Join")
                    .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                    .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                    .with_child(
                        PlanNode::new("Hash").with_child(
                            PlanNode::new("Seq Scan")
                                .on_relation("publication")
                                .with_filter("title LIKE '%July%'"),
                        ),
                    ),
            ),
        )
    }

    #[test]
    fn round_trip_preserves_steps_ops_tags_and_bindings() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        let json = narration.to_json();
        let back = Narration::from_json(&json).unwrap();
        assert_eq!(back, narration);
        // Double round-trip is byte-stable (deterministic field order).
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn wire_form_exposes_expected_fields() {
        let store = default_pg_store();
        let narration = RuleLantern::new(&store).narrate(&figure_4()).unwrap();
        let json = narration.to_json();
        for field in [
            "\"steps\"",
            "\"index\"",
            "\"ops\"",
            "\"text\"",
            "\"tagged\"",
            "\"bindings\"",
        ] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
        // Tag bindings survive: the join step binds <C> to the join
        // condition.
        assert!(
            json.contains("[\"<C>\",\"((i.proceeding_key) = (p.pub_key))\"]"),
            "{json}"
        );
    }

    #[test]
    fn from_sentences_round_trips_too() {
        let narration =
            Narration::from_sentences(["scan the table.".to_string(), "done.".to_string()]);
        let back = Narration::from_json(&narration.to_json()).unwrap();
        assert_eq!(back, narration);
        assert_eq!(back.steps().len(), 2);
        assert_eq!(back.steps()[1].index, 2);
    }

    #[test]
    fn malformed_wire_documents_are_rejected() {
        assert!(Narration::from_json("not json").is_err());
        assert!(Narration::from_json("{}").is_err());
        assert!(Narration::from_json(r#"{"steps": [{}]}"#).is_err());
        assert!(
            Narration::from_json(r#"{"steps": [{"index": 1, "ops": [], "text": "x"}]}"#).is_err()
        );
        // Indexes must be non-negative integers, not silently mangled.
        for bad in ["-3", "1.5", "1e30"] {
            let doc = format!(
                r#"{{"steps": [{{"index": {bad}, "ops": [], "text": "x",
                    "tagged": "x", "bindings": []}}]}}"#
            );
            assert!(Narration::from_json(&doc).is_err(), "{bad}");
        }
    }
}
