//! # lantern-neuron
//!
//! A reimplementation of NEURON [Liu et al., SIGMOD 2019] — the
//! paper's baseline (ref \[36\], compared in US 5).
//!
//! NEURON generates rule-based natural-language descriptions of
//! PostgreSQL QEPs, but unlike LANTERN it has **no declarative operator
//! store**: its translation rules are hard-coded against PostgreSQL
//! operator names. Consequently it cannot translate SQL Server plans —
//! operators like `Table Scan`/`Hash Match` simply miss every rule —
//! which is exactly the failure mode the paper's user study observes
//! (41 of 43 volunteers scored it below 3 on SDSS/SQL Server).

//! [`Neuron`] also implements [`lantern_core::Translator`], so the
//! baseline can be driven through the same unified request/response
//! pipeline as the rule and neural backends (see [`translator`]).

pub mod baseline;
pub mod translator;

pub use baseline::{Neuron, NeuronError};
