//! The NEURON baseline \[36\]: rule-based QEP narration with translation
//! rules **hard-coded against PostgreSQL operator names** — no POOL, no
//! declarative store, no alias layer. Narration quality on PostgreSQL
//! plans is comparable to RULE-LANTERN (it was the same research
//! group's precursor), but any plan whose operators are not in the
//! hard-coded table fails to translate, which is exactly what the
//! paper's US 5 observes on SQL Server/SDSS workloads.

use lantern_plan::{PlanNode, PlanTree};
use std::fmt;

/// NEURON translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeuronError {
    /// The operator no hard-coded rule matches.
    pub operator: String,
}

impl fmt::Display for NeuronError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NEURON has no hard-coded rule for operator '{}'",
            self.operator
        )
    }
}

impl std::error::Error for NeuronError {}

/// The hard-coded PostgreSQL rule table: `(operator, phrase)`.
/// Adding a system means editing source code — the maintainability gap
/// POOL exists to close.
const RULES: &[(&str, &str)] = &[
    ("Seq Scan", "perform sequential scan on"),
    ("Index Scan", "perform index scan on"),
    ("Bitmap Heap Scan", "perform bitmap heap scan on"),
    ("Hash Join", "perform hash join between"),
    ("Merge Join", "perform merge join between"),
    ("Nested Loop", "perform nested loop join between"),
    ("Hash", "hash"),
    ("Sort", "sort"),
    ("Aggregate", "perform aggregate on"),
    ("HashAggregate", "perform hash aggregate on"),
    ("Unique", "perform duplicate removal on"),
    ("Limit", "limit the rows of"),
    ("Materialize", "materialize"),
    ("Gather", "gather parallel results of"),
];

/// The NEURON translator.
#[derive(Debug, Clone, Default)]
pub struct Neuron;

impl Neuron {
    /// Create the baseline translator.
    pub fn new() -> Self {
        Neuron
    }

    /// Narrate a plan. Fails on the first operator without a
    /// hard-coded rule (e.g. every SQL Server operator).
    pub fn describe(&self, tree: &PlanTree) -> Result<Vec<String>, NeuronError> {
        let mut steps = Vec::new();
        let mut counter = 0usize;
        self.visit(&tree.root, true, &mut steps, &mut counter)?;
        Ok(steps)
    }

    /// Document-style numbered text.
    pub fn describe_text(&self, tree: &PlanTree) -> Result<String, NeuronError> {
        Ok(self
            .describe(tree)?
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}. {}", i + 1, s))
            .collect::<Vec<_>>()
            .join("\n"))
    }

    fn visit(
        &self,
        node: &PlanNode,
        is_root: bool,
        steps: &mut Vec<String>,
        counter: &mut usize,
    ) -> Result<String, NeuronError> {
        let phrase = RULES
            .iter()
            .find(|(op, _)| node.op_is(op))
            .map(|(_, p)| *p)
            .ok_or_else(|| NeuronError {
                operator: node.op.clone(),
            })?;
        let mut child_names = Vec::new();
        for c in &node.children {
            child_names.push(self.visit(c, false, steps, counter)?);
        }
        let mut text = match child_names.len() {
            0 => format!(
                "{phrase} {}",
                node.relation.as_deref().unwrap_or("its input")
            ),
            1 => format!("{phrase} {}", child_names[0]),
            _ => format!("{phrase} {} and {}", child_names[0], child_names[1]),
        };
        if let Some(c) = &node.join_cond {
            text.push_str(&format!(" on condition {c}"));
        }
        if let Some(f) = &node.filter {
            text.push_str(&format!(" with filter {f}"));
        }
        let name = if is_root {
            text.push_str(" to produce the final result.");
            String::new()
        } else {
            *counter += 1;
            let t = format!("R{counter}");
            text.push_str(&format!(" producing {t}."));
            t
        };
        steps.push(text);
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lantern_plan::parse_sqlserver_xml_plan;

    fn pg_tree() -> PlanTree {
        PlanTree::new(
            "pg",
            PlanNode::new("Hash Join")
                .with_join_cond("((a.x) = (b.y))")
                .with_child(PlanNode::new("Seq Scan").on_relation("a"))
                .with_child(
                    PlanNode::new("Hash").with_child(PlanNode::new("Seq Scan").on_relation("b")),
                ),
        )
    }

    #[test]
    fn translates_postgresql_plans() {
        let steps = Neuron::new().describe(&pg_tree()).unwrap();
        assert_eq!(steps.len(), 4); // no clustering: Hash is its own step
        let text = steps.join(" ");
        assert!(text.contains("perform hash join between"), "{text}");
        assert!(text.contains("final result"), "{text}");
    }

    #[test]
    fn no_clustering_makes_neuron_more_verbose_than_lantern() {
        use lantern_core::RuleLantern;
        use lantern_pool::default_pg_store;
        let store = default_pg_store();
        let lantern_steps = RuleLantern::new(&store).narrate(&pg_tree()).unwrap();
        let neuron_steps = Neuron::new().describe(&pg_tree()).unwrap();
        assert!(neuron_steps.len() > lantern_steps.steps().len());
    }

    #[test]
    fn fails_on_sql_server_operators() {
        // The US 5 scenario: a SQL Server showplan.
        let doc = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple><QueryPlan>
            <RelOp PhysicalOp="Table Scan" EstimateRows="10" EstimatedTotalSubtreeCost="1">
              <Object Table="photoobj"/>
            </RelOp>
        </QueryPlan></StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;
        let tree = parse_sqlserver_xml_plan(doc).unwrap();
        let err = Neuron::new().describe(&tree).unwrap_err();
        assert_eq!(err.operator, "Table Scan");
    }

    #[test]
    fn numbered_text() {
        let text = Neuron::new().describe_text(&pg_tree()).unwrap();
        assert!(text.starts_with("1. "));
        assert!(text.contains("\n4. "));
    }
}
