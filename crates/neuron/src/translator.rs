//! The NEURON baseline behind the unified [`Translator`] API, so the
//! paper's three-way comparison (RULE-LANTERN / NEURAL-LANTERN /
//! NEURON) runs through one request/response pipeline.

use crate::baseline::Neuron;
use lantern_core::{
    LanternError, Narration, NarrationRequest, NarrationResponse, RenderStyle, Translator,
};

impl Translator for Neuron {
    fn backend(&self) -> &str {
        "neuron"
    }

    fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
        let tree = req.resolve_tree()?;
        let steps = self.describe(&tree).map_err(|e| LanternError::Backend {
            backend: self.backend().to_string(),
            message: e.to_string(),
        })?;
        Ok(NarrationResponse::new(
            self.backend(),
            Narration::from_sentences(steps),
            req.effective_style(RenderStyle::default()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Hash Join",
        "Hash Cond": "((a.x) = (b.y))",
        "Plans": [
          {"Node Type": "Seq Scan", "Relation Name": "a"},
          {"Node Type": "Hash",
           "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
        ]}}]"#;

    #[test]
    fn neuron_serves_the_unified_api() {
        let neuron = Neuron::new();
        let resp = neuron
            .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
            .unwrap();
        assert_eq!(resp.backend, "neuron");
        assert!(
            resp.text.contains("perform hash join between"),
            "{}",
            resp.text
        );
        assert!(resp.text.starts_with("1. "));
        assert_eq!(resp.narration.steps().len(), 4);
    }

    #[test]
    fn missing_rule_surfaces_as_backend_error() {
        let xml = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple><QueryPlan>
            <RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp>
        </QueryPlan></StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;
        let err = Neuron::new()
            .narrate(&NarrationRequest::auto(xml).unwrap())
            .unwrap_err();
        match err {
            LanternError::Backend { backend, message } => {
                assert_eq!(backend, "neuron");
                assert!(message.contains("Table Scan"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_works_through_the_default_implementation() {
        let neuron = Neuron::new();
        let reqs = vec![
            NarrationRequest::auto(PG_DOC).unwrap(),
            NarrationRequest::pg_json("broken"),
        ];
        let out = neuron.narrate_batch(&reqs);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(LanternError::Parse { .. })));
    }
}
