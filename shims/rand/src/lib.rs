//! Offline, API-compatible shim for the subset of `rand` 0.8 this
//! workspace uses: `StdRng` (xoshiro256++ seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods
//! `gen_range` / `gen_bool` / `gen`, and `seq::SliceRandom::shuffle` /
//! `choose`.
//!
//! The container that builds this repository has no registry access,
//! so the real crate cannot be fetched; this shim is deterministic and
//! has identical call-site syntax, though its streams differ from the
//! real `rand` (any test asserting on exact sampled values must derive
//! expectations from *this* generator).

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[0, 1)` from the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be produced uniformly by `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f32()
    }
}

/// Ranges that `Rng::gen_range` accepts for a value type `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty, $next:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + rng.$next() * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + rng.$next() * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f64, next_f64; f32, next_f32);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        self.next_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, as the xoshiro
            // authors recommend for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Mirror of `rand::seq::SliceRandom` (shuffle + choose only).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

use rngs::StdRng as _AssertConstructible;

#[allow(dead_code)]
fn _assert_traits() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<_AssertConstructible>();
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.25..0.75_f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn f64_stream_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
