//! Offline shim for the subset of `parking_lot` this workspace uses:
//! a non-poisoning `RwLock` (plus `Mutex` for good measure), backed by
//! `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::sync;

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
