//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `any::<T>()`, tuple and `prop_map`/`boxed` strategy
//! combinators, `collection::vec`, and regex-subset string strategies
//! (`"[a-z]{1,8}"`, `"\\PC{0,40}"`-style patterns).
//!
//! Differences from the real crate, deliberate for an offline tier-1
//! suite:
//! * **No shrinking** — a failing case reports its generated inputs via
//!   `Debug` in the panic message but is not minimized.
//! * **Deterministic by default** — the runner seeds its RNG from the
//!   `PROPTEST_SEED` environment variable when set, else a fixed
//!   constant, so CI runs are reproducible. Set `PROPTEST_SEED` to
//!   explore different streams.

pub use ::rand;

use ::rand::rngs::StdRng;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps tier-1 fast while still
            // exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// RNG seed for the deterministic runner: `PROPTEST_SEED` env var
    /// if set and parseable, else a fixed constant.
    pub fn seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1A47_7E54)
    }
}

pub mod strategy {
    use super::StdRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`. Unlike the real
    /// crate there is no intermediate `ValueTree` (no shrinking).
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            self.0.new_value(rng)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            use ::rand::Rng;
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$ix.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use std::marker::PhantomData;

    /// `any::<T>()` — uniform values of a primitive type.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    pub fn any<T: ::rand::Standard>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: ::rand::Standard> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::sample_standard(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use ::rand::Rng;

    /// Mirror of `proptest::collection::SizeRange` (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-subset string strategy: `&str` patterns generate matching
    //! strings. Supported syntax — a sequence of atoms, each optionally
    //! quantified with `{m}` / `{m,n}` / `?` / `*` / `+`:
    //!
    //! * `[a-z0-9_]` character classes (ranges and literals),
    //! * `\PC` (any printable, non-control char — ASCII plus a small
    //!   set of multibyte code points to exercise escaping),
    //! * `\d`, `\w`, `\s` shorthand classes,
    //! * literal characters.

    use super::strategy::Strategy;
    use super::StdRng;
    use ::rand::Rng;

    const PRINTABLE_EXTRA: &[char] = &['é', 'ß', 'Ω', '→', '漢', 'か'];
    const UNBOUNDED_MAX: u32 = 8;

    #[derive(Clone, Debug)]
    enum Atom {
        Class(Vec<(char, char)>),
        Printable,
        Literal(char),
    }

    #[derive(Clone, Debug)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32, // inclusive
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                '\\' => {
                    let next = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling \\ in pattern {pattern:?}"));
                    i += 2;
                    match next {
                        'P' => {
                            // \PC / \p{...}-style category; we support
                            // the one the suite uses: printable chars.
                            if chars.get(i) == Some(&'C') {
                                i += 1;
                            }
                            Atom::Printable
                        }
                        'd' => Atom::Class(vec![('0', '9')]),
                        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        's' => Atom::Class(vec![(' ', ' ')]),
                        c => Atom::Literal(c),
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().expect("bad {m,n} lower bound");
                            let hi = if hi.trim().is_empty() {
                                lo + UNBOUNDED_MAX
                            } else {
                                hi.trim().parse().expect("bad {m,n} upper bound")
                            };
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().expect("bad {n} count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, UNBOUNDED_MAX)
                }
                Some('+') => {
                    i += 1;
                    (1, UNBOUNDED_MAX)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_atom(atom: &Atom, rng: &mut StdRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                    .expect("invalid char range in pattern")
            }
            Atom::Printable => {
                // Mostly ASCII printable; occasionally a multibyte char.
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20u32..=0x7E)).unwrap()
                } else {
                    PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]
                }
            }
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for piece in parse(self) {
                let reps = rng.gen_range(piece.min..=piece.max);
                for _ in 0..reps {
                    out.push(gen_atom(&piece.atom, rng));
                }
            }
            out
        }
    }

    impl Strategy for String {
        type Value = String;

        fn new_value(&self, rng: &mut StdRng) -> String {
            self.as_str().new_value(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::rand::SeedableRng as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(
                    $crate::test_runner::seed(),
                );
                let strats = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&strats, &mut rng);
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "proptest case {}/{} failed (seed {}): {}",
                            case + 1, config.cases, $crate::test_runner::seed(), msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rand::rngs::StdRng;
    use crate::rand::SeedableRng;

    #[test]
    fn regex_class_pattern_matches_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::new_value(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_pattern_never_emits_controls() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::new_value(&"\\PC{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = prop_oneof![
            any::<u8>().prop_map(|v| v as u32),
            any::<bool>().prop_map(|b| if b { 1000u32 } else { 2000 }),
        ];
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v <= 255 || v == 1000 || v == 2000);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in any::<u8>(), v in crate::collection::vec("[a-b]{1,2}", 1..3)) {
            prop_assert!(u32::from(x) < 256);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
