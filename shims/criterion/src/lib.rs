//! Offline shim for the subset of `criterion` this workspace uses:
//! `Criterion::default()` with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple (mean / min / max over timed
//! samples); there is no HTML report, outlier analysis, or baseline
//! comparison. The goal is that `cargo bench` compiles and produces
//! honest wall-clock numbers offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean per-iteration time of each sample.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        // Runs without panicking and reports a line.
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
