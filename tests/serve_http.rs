//! Socket-level integration tests for the narration service: real
//! `TcpStream`s against servers booted on ephemeral ports, round-
//! tripping PG-JSON and SQL-Server-XML plans through all three
//! backends, the batch endpoint, the error→status mapping, and
//! graceful shutdown.
//!
//! The fixtures and assertions here are the source of truth for the
//! endpoint reference in `docs/SERVING.md` — change one, change both.

use lantern::core::Narration;
use lantern::neural::Qep2SeqConfig;
use lantern::prelude::*;
use lantern::text::json::JsonValue;

/// The paper's Figure 4 plan as a PostgreSQL EXPLAIN (FORMAT JSON)
/// document (also the `docs/SERVING.md` single-narration example).
const PG_DOC: &str = r#"{"Plan": {"Node Type": "Aggregate",
    "Plans": [{"Node Type": "Hash Join",
        "Hash Cond": "((i.proceeding_key) = (p.pub_key))",
        "Plans": [
            {"Node Type": "Seq Scan", "Relation Name": "inproceedings"},
            {"Node Type": "Hash",
             "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                        "Filter": "title LIKE '%July%'"}]}
        ]}]}}"#;

/// A SQL Server XML showplan (the `docs/SERVING.md` cross-vendor
/// example).
const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
    <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
    </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

fn json_of(body: &str) -> JsonValue {
    JsonValue::parse(body).unwrap_or_else(|e| panic!("unparseable body {body:?}: {e}"))
}

fn text_of(value: &JsonValue) -> String {
    value
        .get("text")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("no text field in {}", value.to_string_compact()))
        .to_string()
}

fn error_kind_of(value: &JsonValue) -> String {
    value
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("no error.kind in {}", value.to_string_compact()))
        .to_string()
}

/// Acceptance: PG-JSON and SQL-Server-XML documents round-trip through
/// all three backends over real sockets, and the response narration is
/// the stable wire format.
#[test]
fn all_three_backends_round_trip_over_sockets() {
    // Rule and NEURON come from the builder directly; NEURAL is a
    // quickly-trained tiny model over the combined pg+mssql catalog
    // (translation *quality* is not under test — the serving path is).
    let store = lantern::pool::default_mssql_store();
    let db = Database::generate(&dblp_catalog(), 0.0003, 5);
    let mut config = Qep2SeqConfig {
        hidden: 16,
        ..Default::default()
    };
    config.train.epochs = 2;
    let (model, _) = NeuralLantern::train_on(&db, &store, 10, config, 9);

    let rule = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let neural = LanternBuilder::new()
        .neural_model(model)
        .serve("127.0.0.1:0")
        .unwrap();
    let neuron = LanternBuilder::new()
        .backend(Backend::Neuron)
        .serve("127.0.0.1:0")
        .unwrap();

    for (backend, handle) in [("rule", &rule), ("neural", &neural), ("neuron", &neuron)] {
        let mut client = HttpClient::connect(handle.addr()).unwrap();

        // PG JSON narrates on every backend.
        let resp = client.post("/narrate", PG_DOC).unwrap();
        assert_eq!(resp.status, 200, "{backend}: {}", resp.body);
        let value = json_of(&resp.body);
        assert_eq!(
            value.get("backend").and_then(JsonValue::as_str),
            Some(backend)
        );
        let text = text_of(&value);
        assert!(text.starts_with("1. "), "{backend}: {text}");
        // The narration field is exactly the `Narration::to_json` wire
        // format: it deserializes and re-serializes byte-identically.
        let wire = value.get("narration").unwrap().to_string_compact();
        let narration = Narration::from_json(&wire).unwrap();
        assert!(!narration.steps().is_empty(), "{backend}");
        assert_eq!(narration.to_json(), wire, "{backend}");

        // SQL Server XML: rule and neural narrate via the combined
        // catalog; NEURON's hard-coded PostgreSQL rules make it a
        // structured 501 — its defining limitation (paper US 5),
        // reported over the wire rather than as a crash.
        let resp = client.post("/narrate", XML_DOC).unwrap();
        if backend == "neuron" {
            assert_eq!(resp.status, 501, "{backend}: {}", resp.body);
            assert_eq!(error_kind_of(&json_of(&resp.body)), "backend");
        } else {
            assert_eq!(resp.status, 200, "{backend}: {}", resp.body);
            let text = text_of(&json_of(&resp.body));
            assert!(!text.is_empty(), "{backend}");
        }
    }

    for handle in [rule, neural, neuron] {
        handle.shutdown().unwrap();
    }
}

/// The served response is byte-for-byte what the in-process service
/// produces: HTTP adds transport, not translation drift.
#[test]
fn served_narration_equals_in_process_service() {
    let local = LanternBuilder::new().build().unwrap();
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    for doc in [PG_DOC, XML_DOC] {
        let direct = local.narrate_document(doc).unwrap();
        let value = json_of(&client.post("/narrate", doc).unwrap().body);
        assert_eq!(text_of(&value), direct.text);
        assert_eq!(
            value.get("narration").unwrap().to_string_compact(),
            direct.narration.to_json()
        );
    }
    drop(client);
    server.shutdown().unwrap();
}

#[test]
fn batch_endpoint_preserves_order_and_isolates_failures() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Distinct relations per entry so order is observable; entry 2 is
    // garbage and must fail alone.
    let docs: Vec<String> = (0..4)
        .map(|i| {
            if i == 2 {
                "EXPLAIN is not a serialized plan".to_string()
            } else {
                format!(r#"{{"Plan": {{"Node Type": "Seq Scan", "Relation Name": "t{i}"}}}}"#)
            }
        })
        .collect();
    let body =
        JsonValue::Array(docs.iter().cloned().map(JsonValue::String).collect()).to_string_compact();
    let resp = client.post("/narrate/batch", &body).unwrap();
    assert_eq!(resp.status, 200);
    let JsonValue::Array(items) = json_of(&resp.body) else {
        panic!("batch response must be an array: {}", resp.body);
    };
    assert_eq!(items.len(), 4);
    for (i, item) in items.iter().enumerate() {
        if i == 2 {
            assert_eq!(error_kind_of(item), "unknown_format");
        } else {
            assert!(
                text_of(item).contains(&format!("t{i}")),
                "entry {i} out of order: {}",
                item.to_string_compact()
            );
        }
    }

    // Styles apply to the whole batch.
    let resp = client.post("/narrate/batch?style=bulleted", &body).unwrap();
    let JsonValue::Array(items) = json_of(&resp.body) else {
        panic!("batch response must be an array");
    };
    assert!(text_of(&items[0]).starts_with("- "));

    drop(client);
    server.shutdown().unwrap();
}

/// The error→HTTP mapping observed over the wire, end to end (the
/// `docs/SERVING.md` status table).
#[test]
fn error_statuses_over_sockets() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let cases: &[(&str, &str, u16, &str)] = &[
        ("/narrate", "", 400, "empty_input"),
        ("/narrate", "EXPLAIN SELECT 1", 400, "unknown_format"),
        ("/narrate", r#"{"Plan": {"Node Type"#, 400, "parse"),
        ("/narrate", "<html><body/></html>", 400, "parse"),
        (
            "/narrate",
            r#"{"Plan": {"Node Type": "Hash Join", "Hash Cond": "(a.x = b.y)",
                "Plans": [{"Node Type": "Seq Scan", "Relation Name": "a"},
                          {"Node Type": "Hash"}]}}"#,
            422,
            "plan",
        ),
        ("/narrate?style=sonnet", PG_DOC, 400, "style"),
        ("/narrate/batch", "not json", 400, "parse"),
    ];
    for (path, body, status, kind) in cases {
        let resp = client.post(path, body).unwrap();
        assert_eq!(resp.status, *status, "{path} {body:?}: {}", resp.body);
        let value = json_of(&resp.body);
        assert_eq!(error_kind_of(&value), *kind, "{path} {body:?}");
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("status"))
                .and_then(JsonValue::as_f64),
            Some(*status as f64)
        );
    }

    // Routing misses.
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(
        client.request("DELETE", "/narrate", None).unwrap().status,
        405
    );

    drop(client);
    server.shutdown().unwrap();

    // Unknown operator needs a narrower catalog: a pg-only store makes
    // the mssql plan a structured 422.
    let server = LanternBuilder::new()
        .store(PoemStore::with_default_pg_operators())
        .serve("127.0.0.1:0")
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let resp = client.post("/narrate", XML_DOC).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert_eq!(error_kind_of(&json_of(&resp.body)), "unknown_operator");
    drop(client);
    server.shutdown().unwrap();
}

#[test]
fn healthz_stats_and_graceful_shutdown() {
    let server = LanternBuilder::new()
        .style(RenderStyle::Bulleted)
        .serve("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    let health = json_of(&client.get("/healthz").unwrap().body);
    assert_eq!(health.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        health.get("backend").and_then(JsonValue::as_str),
        Some("rule")
    );
    assert!(health
        .get("uptime_ms")
        .and_then(JsonValue::as_f64)
        .is_some());

    // The builder's configured style flows through the served path.
    let resp = client.post("/narrate", PG_DOC).unwrap();
    assert!(text_of(&json_of(&resp.body)).starts_with("- "));

    let _ = client.post("/narrate", "").unwrap();
    let stats = json_of(&client.get("/stats").unwrap().body);
    let count = |key: &str| stats.get(key).and_then(JsonValue::as_f64).unwrap() as u64;
    assert_eq!(count("narrate_requests"), 2);
    assert_eq!(count("narrate_ok"), 1);
    assert_eq!(count("narrate_errors"), 1);
    assert_eq!(count("connections"), 1, "keep-alive reuses one connection");
    assert_eq!(count("requests_total"), 4);
    // The gauges: exactly this /stats request is in flight while its
    // snapshot is taken, and uptime is reported in whole seconds too.
    assert_eq!(count("requests_in_flight"), 1);
    assert!(count("uptime_seconds") <= count("uptime_ms") / 1000 + 1);

    // In-process stats agree with the served snapshot (modulo the
    // /stats request itself, already counted above).
    assert_eq!(server.stats().narrate_ok, 1);

    drop(client);
    server.shutdown().unwrap();

    // After shutdown nothing serves: a fresh HTTP exchange must fail.
    let gone =
        match std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500)) {
            Err(_) => true,
            Ok(mut stream) => {
                use std::io::{Read, Write};
                stream
                    .set_read_timeout(Some(std::time::Duration::from_millis(500)))
                    .unwrap();
                let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                let mut buf = Vec::new();
                matches!(stream.read_to_end(&mut buf), Ok(0) | Err(_))
            }
        };
    assert!(gone, "server still answering after graceful shutdown");
}

/// Write one raw HTTP request over a fresh socket and collect the
/// response (status, full text). Used where `HttpClient` is too
/// well-behaved to produce the malformed wire forms under test.
fn raw_exchange(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    (status, text)
}

/// Wire-level hardening: conflicting duplicate `Content-Length`
/// headers are rejected as a request-smuggling guard (identical
/// repeats still serve), and query parameters percent-decode before
/// they are matched.
#[test]
fn wire_hardening_over_sockets() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;

    // Two Content-Length values that disagree: ambiguous body
    // boundary, refused outright with a 400.
    let (status, text) = raw_exchange(
        addr,
        "POST /narrate HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\
         Connection: close\r\n\r\nbody",
    );
    assert_eq!(status, 400, "{text}");
    assert!(text.contains("conflicting Content-Length"), "{text}");

    // Identical duplicates fold to one value and serve normally.
    let raw = format!(
        "POST /narrate HTTP/1.1\r\nContent-Length: {len}\r\nContent-Length: {len}\r\n\
         Connection: close\r\n\r\n{doc}",
        len = doc.len()
    );
    let (status, text) = raw_exchange(addr, &raw);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("sequential scan on orders"), "{text}");

    // An encoded trailing space (`%20` and `+`) in ?style= decodes
    // and trims instead of 400ing on a style named "bulleted ".
    for encoded in ["bulleted%20", "bulleted+"] {
        let raw = format!(
            "POST /narrate?style={encoded} HTTP/1.1\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{doc}",
            doc.len()
        );
        let (status, text) = raw_exchange(addr, &raw);
        assert_eq!(status, 200, "style={encoded}: {text}");
        assert!(text.contains("- "), "bulleted style applies: {text}");
    }

    server.shutdown().unwrap();
}

/// `POST /narrate/batch` envelope rejections over real sockets: an
/// empty JSON array and every non-array body are clear, structured
/// 400s — never a confusing 200 from the narrate pipeline.
#[test]
fn batch_envelope_rejections_over_sockets() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    for body in ["[]", "  [ ]  ", "{}", "\"a plan\"", "17", "null"] {
        let resp = client.post("/narrate/batch", body).unwrap();
        assert_eq!(resp.status, 400, "{body:?}: {}", resp.body);
        let value = json_of(&resp.body);
        assert_eq!(error_kind_of(&value), "parse", "{body:?}");
        let message = value
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap();
        assert!(
            message.contains("non-empty JSON array") || message.contains("JSON array"),
            "{body:?}: {message}"
        );
    }
    // The guard does not over-reject: a one-element array still works.
    let body = JsonValue::Array(vec![JsonValue::String(PG_DOC.to_string())]).to_string_compact();
    let resp = client.post("/narrate/batch", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    drop(client);
    server.shutdown().unwrap();
}

/// The Figure 4 plan with the hash join swapped for a merge join —
/// the `docs/SERVING.md` diff example's alternative.
const MERGE_ALT_DOC: &str = r#"{"Plan": {"Node Type": "Aggregate",
    "Plans": [{"Node Type": "Merge Join",
        "Merge Cond": "((i.proceeding_key) = (p.pub_key))",
        "Plans": [
            {"Node Type": "Seq Scan", "Relation Name": "inproceedings"},
            {"Node Type": "Hash",
             "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                        "Filter": "title LIKE '%July%'"}]}
        ]}]}}"#;

/// Acceptance: `POST /narrate/diff` round-trips a base plan and an
/// alternative over real sockets (formats auto-detected per side), and
/// `POST /narrate/diff/batch` ranks one base against N alternatives by
/// informativeness, tagging every item with its input position.
#[test]
fn diff_endpoints_over_sockets() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let envelope = |base: &str, alt: &str| {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("base".to_string(), JsonValue::String(base.to_string()));
        obj.insert("alt".to_string(), JsonValue::String(alt.to_string()));
        JsonValue::Object(obj).to_string_compact()
    };

    // One plan against its join-algorithm rewrite: the change list
    // names the substitution and the narration says it in POEM voice.
    let resp = client
        .post("/narrate/diff", &envelope(PG_DOC, MERGE_ALT_DOC))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let value = json_of(&resp.body);
    assert_eq!(
        value.get("backend").and_then(JsonValue::as_str),
        Some("rule-diff")
    );
    assert_eq!(value.get("identical"), Some(&JsonValue::Bool(false)));
    let JsonValue::Array(changes) = value.get("changes").unwrap() else {
        panic!("changes must be an array: {}", resp.body);
    };
    assert!(!changes.is_empty());
    assert!(
        changes
            .iter()
            .any(|c| c.get("kind").and_then(JsonValue::as_str) == Some("operator-substitution")),
        "{}",
        resp.body
    );
    let text = text_of(&value);
    assert!(text.contains("merge join"), "{text}");

    // Self-diff over the wire: identical, empty change list, score 0.
    let resp = client
        .post("/narrate/diff", &envelope(PG_DOC, PG_DOC))
        .unwrap();
    let value = json_of(&resp.body);
    assert_eq!(value.get("identical"), Some(&JsonValue::Bool(true)));
    assert_eq!(value.get("score").and_then(JsonValue::as_f64), Some(0.0));

    // Cross-vendor: a pg base against an mssql alternative — each
    // side's format detects independently.
    let resp = client
        .post("/narrate/diff", &envelope(PG_DOC, XML_DOC))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // Batch: identical plan (score 0), a filter tweak (small), and the
    // join rewrite (large) come back ranked large-to-small with
    // `alt_index` pointing at their input positions.
    let filter_alt = PG_DOC.replace("%July%", "%June%");
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("base".to_string(), JsonValue::String(PG_DOC.to_string()));
    obj.insert(
        "alts".to_string(),
        JsonValue::Array(vec![
            JsonValue::String(PG_DOC.to_string()),
            JsonValue::String(filter_alt),
            JsonValue::String(MERGE_ALT_DOC.to_string()),
        ]),
    );
    let resp = client
        .post(
            "/narrate/diff/batch",
            &JsonValue::Object(obj).to_string_compact(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let JsonValue::Array(items) = json_of(&resp.body) else {
        panic!("diff batch response must be an array: {}", resp.body);
    };
    assert_eq!(items.len(), 3);
    let ranked: Vec<f64> = items
        .iter()
        .map(|i| i.get("alt_index").and_then(JsonValue::as_f64).unwrap())
        .collect();
    assert_eq!(ranked, [2.0, 1.0, 0.0], "{}", resp.body);
    let scores: Vec<f64> = items
        .iter()
        .map(|i| i.get("score").and_then(JsonValue::as_f64).unwrap())
        .collect();
    assert!(scores[0] > scores[1] && scores[1] > scores[2], "{scores:?}");
    assert_eq!(scores[2], 0.0);

    drop(client);
    server.shutdown().unwrap();
}

/// Malformed diff bodies over raw sockets are structured 400s keyed by
/// `LanternError::kind()` — never a hung connection or an opaque 500.
#[test]
fn diff_envelope_rejections_over_sockets() {
    let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let post_raw = |path: &str, body: &str| {
        raw_exchange(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    };

    let empty_base = format!(
        r#"{{"base": "", "alt": {}}}"#,
        JsonValue::String(PG_DOC.to_string()).to_string_compact()
    );
    let garbage_base = format!(
        r#"{{"base": "EXPLAIN SELECT 1", "alts": [{}]}}"#,
        JsonValue::String(PG_DOC.to_string()).to_string_compact()
    );
    let cases: &[(&str, &str, &str)] = &[
        ("/narrate/diff", "not json at all", "parse"),
        ("/narrate/diff", "[]", "parse"),
        ("/narrate/diff", r#"{"base": "x"}"#, "parse"),
        ("/narrate/diff", r#"{"alt": "x"}"#, "parse"),
        ("/narrate/diff", r#"{"base": 1, "alt": "x"}"#, "parse"),
        ("/narrate/diff", &empty_base, "empty_input"),
        (
            "/narrate/diff/batch",
            r#"{"base": "x", "alts": []}"#,
            "parse",
        ),
        (
            "/narrate/diff/batch",
            r#"{"base": "x", "alts": "y"}"#,
            "parse",
        ),
        // A base in no known format fails the whole batch request.
        ("/narrate/diff/batch", &garbage_base, "unknown_format"),
    ];
    for (path, body, kind) in cases {
        let (status, text) = post_raw(path, body);
        assert_eq!(status, 400, "{path} {body:?}: {text}");
        let json_start = text.find("\r\n\r\n").unwrap() + 4;
        let value = json_of(&text[json_start..]);
        assert_eq!(error_kind_of(&value), *kind, "{path} {body:?}");
    }

    // Wrong method on a live diff route is 405, not 404.
    let (status, _) = raw_exchange(
        addr,
        "GET /narrate/diff HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);

    server.shutdown().unwrap();
}

/// Event-core behaviour over raw sockets — HTTP/1.1 pipelining,
/// slow-loris isolation, and load-shedding. The readiness loop is
/// Unix-only (`epoll`/`poll`), so these tests are too; non-Unix
/// targets serve through the legacy blocking path instead.
#[cfg(unix)]
mod event_core {
    use super::{json_of, raw_exchange};
    use lantern::core::{
        LanternError, NarrationRequest, NarrationResponse, RuleTranslator, Translator,
    };
    use lantern::prelude::*;
    use lantern::serve::serve;
    use lantern::text::json::JsonValue;
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::Duration;

    fn pg_doc(relation: &str) -> String {
        format!(r#"{{"Plan": {{"Node Type": "Seq Scan", "Relation Name": "{relation}"}}}}"#)
    }

    /// One `POST /narrate` on the wire; `close` marks the last request
    /// of a pipelined burst so the server ends the connection after it.
    fn post_narrate(doc: &str, close: bool) -> String {
        format!(
            "POST /narrate HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n{doc}",
            doc.len(),
            if close { "Connection: close\r\n" } else { "" },
        )
    }

    /// A burst of pipelined requests written in one send comes back as
    /// one response per request, in request order, on one connection.
    #[test]
    fn pipelined_burst_answers_in_request_order() {
        let server = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
        let mut burst = String::new();
        for i in 0..3 {
            burst.push_str(&post_narrate(&pg_doc(&format!("pipelined_{i}")), i == 2));
        }
        let (status, text) = raw_exchange(server.addr(), &burst);
        assert_eq!(status, 200, "{text}");
        assert_eq!(
            text.matches("HTTP/1.1 200").count(),
            3,
            "one response per pipelined request: {text}"
        );
        let pos = |needle: &str| {
            text.find(needle)
                .unwrap_or_else(|| panic!("{needle} missing from {text}"))
        };
        assert!(pos("pipelined_0") < pos("pipelined_1"), "{text}");
        assert!(pos("pipelined_1") < pos("pipelined_2"), "{text}");
        server.shutdown().unwrap();
    }

    /// A connection that trickles half a header must not occupy the
    /// (single) worker: request dispatch happens only after a full
    /// frame arrives, so well-formed clients keep being served.
    #[test]
    fn partial_header_does_not_stall_other_connections() {
        let server = LanternBuilder::new()
            .build()
            .unwrap()
            .serve(
                "127.0.0.1:0",
                ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        let addr = server.addr();

        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"POST /narr").unwrap(); // header never completes

        for i in 0..3 {
            let (status, text) =
                raw_exchange(addr, &post_narrate(&pg_doc(&format!("live{i}")), true));
            assert_eq!(status, 200, "stalled behind a slow-loris: {text}");
        }
        drop(loris);
        server.shutdown().unwrap();
    }

    /// When the dispatch queue saturates, overflow requests are shed
    /// with an immediate `503` carrying `Retry-After` and the
    /// structured error body — and accepted requests still narrate on
    /// the same (still-open) connection, in request order.
    #[test]
    fn saturated_queue_sheds_503_with_retry_after() {
        struct Slow(RuleTranslator);
        impl Translator for Slow {
            fn backend(&self) -> &str {
                "slow"
            }
            fn narrate(&self, req: &NarrationRequest) -> Result<NarrationResponse, LanternError> {
                std::thread::sleep(Duration::from_millis(25));
                self.0.narrate(req)
            }
        }

        let server = serve(
            Slow(RuleTranslator::new(lantern::pool::default_mssql_store())),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                queue_depth: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();

        // Eight requests in one write against a 25 ms worker behind a
        // one-slot queue: the first is accepted, most of the rest
        // arrive while the queue is full and must shed.
        let mut burst = String::new();
        for i in 0..8 {
            burst.push_str(&post_narrate(&pg_doc(&format!("shed{i}")), i == 7));
        }
        let (_, text) = raw_exchange(server.addr(), &burst);
        assert_eq!(
            text.matches("HTTP/1.1 ").count(),
            8,
            "every pipelined request answered: {text}"
        );
        let shed = text.matches("HTTP/1.1 503").count();
        assert!(shed >= 1, "saturated queue must shed: {text}");
        assert!(
            text.matches("HTTP/1.1 200").count() >= 1,
            "shedding must not starve accepted work: {text}"
        );
        assert!(
            text.contains("Retry-After: 1"),
            "503 must advertise Retry-After: {text}"
        );
        // The shed body is the structured error envelope, parsed from
        // the first 503 in the stream.
        let at = text.find("HTTP/1.1 503").unwrap();
        let body_start = text[at..].find("\r\n\r\n").unwrap() + at + 4;
        let body_end = text[body_start..]
            .find("HTTP/1.1 ")
            .map(|i| body_start + i)
            .unwrap_or(text.len());
        let value = json_of(text[body_start..body_end].trim());
        let error = value.get("error").expect("structured error body");
        assert_eq!(
            error.get("kind").and_then(JsonValue::as_str),
            Some("overloaded")
        );
        assert_eq!(error.get("status").and_then(JsonValue::as_f64), Some(503.0));
        // Responses still serialize in request order: the accepted
        // first request's narration precedes everything else.
        let first_body = text.find("shed0").expect("first request narrated");
        assert!(first_body < body_start, "{text}");
        server.shutdown().unwrap();
    }
}

/// Acceptance: a cache-enabled service over real sockets — a repeated
/// plan reports a cache hit in `/stats`, `?nocache=1` bypasses,
/// `POST /cache/clear` empties, and every response body is identical.
#[test]
fn cached_service_over_sockets() {
    let server = LanternBuilder::new()
        .cache(CacheConfig::default())
        .serve("127.0.0.1:0")
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let cold = client.post("/narrate", PG_DOC).unwrap();
    assert_eq!(cold.status, 200);
    let warm = client.post("/narrate", PG_DOC).unwrap();
    assert_eq!(warm.body, cold.body, "a hit must be byte-identical");

    let cache_of = |body: &str| {
        json_of(body)
            .get("cache")
            .expect("cache object in /stats")
            .clone()
    };
    let stats = cache_of(&client.get("/stats").unwrap().body);
    let count = |v: &JsonValue, key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap() as u64;
    assert_eq!(count(&stats, "hits"), 1);
    assert_eq!(count(&stats, "entries"), 1);
    assert_eq!(
        count(&stats, "doc_hits"),
        1,
        "byte-identical re-submission skips parsing"
    );

    // Bypass: same body, no extra hit.
    let bypass = client.post("/narrate?nocache=1", PG_DOC).unwrap();
    assert_eq!(bypass.body, cold.body);
    let stats = cache_of(&client.get("/stats").unwrap().body);
    assert_eq!(count(&stats, "hits"), 1, "nocache must not touch the cache");

    // Admin clear.
    let resp = client.post("/cache/clear", "").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        json_of(&resp.body)
            .get("cleared")
            .and_then(JsonValue::as_f64),
        Some(1.0)
    );
    let stats = cache_of(&client.get("/stats").unwrap().body);
    assert_eq!(count(&stats, "entries"), 0);

    // Batch with 75% duplicates against the now-cold cache: one
    // narration, three in-batch dedup stitches, no extra LRU hits.
    let entry = JsonValue::String(PG_DOC.to_string()).to_string_compact();
    let batch = format!("[{entry}, {entry}, {entry}, {entry}]");
    let resp = client.post("/narrate/batch", &batch).unwrap();
    assert_eq!(resp.status, 200);
    let stats = cache_of(&client.get("/stats").unwrap().body);
    assert_eq!(count(&stats, "hits"), 1, "no batch item hit the cold LRU");
    assert_eq!(count(&stats, "batch_dedup_hits"), 3);
    assert_eq!(count(&stats, "entries"), 1, "the unique plan was cached");

    drop(client);
    server.shutdown().unwrap();
}
