//! Cross-crate integration: SQL text → planner → EXPLAIN artifacts →
//! plan parsers → RULE-LANTERN → NEURAL-LANTERN, on all four schemas.

use lantern::catalog::{imdb_catalog, sdss_catalog, tpch_catalog};
use lantern::core::{decompose_acts, Lantern, RuleLantern};
use lantern::engine::{explain::explain, Database, ExplainFormat, Planner};
use lantern::plan::{parse_pg_json_plan, parse_sqlserver_xml_plan};
use lantern::pool::{default_mssql_store, default_pg_store};
use lantern::sql::parse_sql;

#[test]
fn json_artifact_round_trip_preserves_narration() {
    let db = Database::generate(&tpch_catalog(), 0.0002, 3);
    let planner = Planner::new(&db);
    let store = default_pg_store();
    let rule = RuleLantern::new(&store);
    let q = parse_sql(
        "SELECT n.n_name, COUNT(*) FROM nation n, customer c \
         WHERE c.c_nationkey = n.n_nationkey GROUP BY n.n_name ORDER BY n.n_name",
    )
    .unwrap();
    let plan = planner.plan(&q).unwrap();
    let direct = rule.narrate(&plan.tree()).unwrap().text();
    // Through the JSON artifact, as a real client would consume it.
    let json = explain(&plan, ExplainFormat::PgJson);
    let reparsed = parse_pg_json_plan(&json).unwrap();
    let via_artifact = rule.narrate(&reparsed).unwrap().text();
    assert_eq!(direct, via_artifact);
}

#[test]
fn sql_server_artifact_narrates_with_mssql_catalog() {
    let db = Database::generate(&sdss_catalog(), 0.0002, 4);
    let planner = Planner::new(&db);
    let q = parse_sql(
        "SELECT p.objid, s.z_redshift FROM photoobj p, specobj s \
         WHERE s.bestobjid = p.objid AND s.class = 'QSO' LIMIT 10",
    )
    .unwrap();
    let plan = planner.plan(&q).unwrap();
    let xml = explain(&plan, ExplainFormat::SqlServerXml);
    let tree = parse_sqlserver_xml_plan(&xml).unwrap();
    assert_eq!(tree.source, "mssql");
    let lantern = Lantern::new(default_mssql_store());
    let narration = lantern.narrate_tree(&tree).unwrap();
    assert!(narration.text().contains("table scan") || narration.text().contains("index seek"));
    assert!(narration.text().ends_with("to get the final results."));
}

#[test]
fn acts_cover_every_operator_of_every_workload_plan() {
    // Every act's ops must account for every node in the plan (aux
    // nodes are absorbed by clusters, never lost).
    let db = Database::generate(&tpch_catalog(), 0.0002, 5);
    let planner = Planner::new(&db);
    let store = default_pg_store();
    for sql in [
        "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10",
        "SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey LIMIT 5",
        "SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus",
    ] {
        let plan = planner.plan(&parse_sql(sql).unwrap()).unwrap();
        let tree = plan.tree();
        let acts = decompose_acts(&tree, &store).unwrap();
        let ops_in_acts: usize = acts.iter().map(|a| a.ops.len()).sum();
        assert_eq!(ops_in_acts, tree.size(), "{sql}");
    }
}

#[test]
fn neural_pipeline_runs_cross_domain() {
    use lantern::neural::{NeuralLantern, Qep2SeqConfig};
    let imdb = Database::generate(&imdb_catalog(), 0.0002, 6);
    let store = default_pg_store();
    let mut config = Qep2SeqConfig {
        hidden: 24,
        ..Default::default()
    };
    config.train.epochs = 4;
    let (neural, ts) = NeuralLantern::train_on(&imdb, &store, 15, config, 6);
    assert!(ts.examples.len() > 15);
    // Translate a TPC-H plan with the IMDB-trained model — the
    // schema-independence the act/tag design buys.
    let tpch = Database::generate(&tpch_catalog(), 0.0002, 7);
    let planner = Planner::new(&tpch);
    let plan = planner
        .plan(&parse_sql("SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000").unwrap())
        .unwrap();
    let steps = neural.describe(&plan.tree()).unwrap();
    assert!(!steps.is_empty());
    for s in &steps {
        assert!(!s.contains("<T>") && !s.contains("<TN>"), "{s}");
    }
}

#[test]
fn facade_prelude_compiles_and_works() {
    use lantern::prelude::*;
    let catalog = tpch_catalog();
    let db = Database::generate(&catalog, 0.0002, 42);
    let query = parse_sql("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'F'").unwrap();
    let qep = Planner::new(&db).plan(&query).unwrap();
    let store = PoemStore::with_default_pg_operators();
    let narration = RuleLantern::new(&store).narrate(&qep.tree()).unwrap();
    assert!(narration.text().contains("sequential scan") || narration.text().contains("scan"));
}
