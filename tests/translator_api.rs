//! The unified translator API end to end: one `NarrationRequest`
//! pipeline over the rule, neural, and NEURON-baseline backends,
//! format auto-detection negative paths, wire-format stability, and
//! batch/sequential agreement.

use lantern::core::{LanternError, Narration, PlanFormat};
use lantern::neural::Qep2SeqConfig;
use lantern::prelude::*;

const PG_DOC: &str = r#"[{"Plan": {"Node Type": "Hash Join",
    "Hash Cond": "((a.x) = (b.y))",
    "Plans": [
      {"Node Type": "Seq Scan", "Relation Name": "a"},
      {"Node Type": "Hash",
       "Plans": [{"Node Type": "Seq Scan", "Relation Name": "b"}]}
    ]}}]"#;

/// Acceptance: the same request runs through all three backends via
/// the same trait and builder.
#[test]
fn same_request_through_all_three_backends() {
    let request = NarrationRequest::auto(PG_DOC).expect("auto-detects JSON");

    // Rule backend.
    let rule = LanternBuilder::new().build().unwrap();
    // Neural backend (quickly-trained tiny model; quality is not the
    // point of this test — the shared interface is).
    let db = Database::generate(&dblp_catalog(), 0.0003, 5);
    let mut config = Qep2SeqConfig {
        hidden: 16,
        ..Default::default()
    };
    config.train.epochs = 2;
    let (model, _) =
        NeuralLantern::train_on(&db, &PoemStore::with_default_pg_operators(), 10, config, 9);
    let neural = LanternBuilder::new().neural_model(model).build().unwrap();
    // NEURON baseline.
    let neuron = LanternBuilder::new()
        .backend(Backend::Neuron)
        .build()
        .unwrap();

    let services: [(&str, &LanternService); 3] =
        [("rule", &rule), ("neural", &neural), ("neuron", &neuron)];
    for (expected_backend, service) in services {
        let response = service.narrate(&request).unwrap();
        assert_eq!(response.backend, expected_backend);
        assert_eq!(service.backend(), expected_backend);
        assert!(!response.narration.steps().is_empty(), "{expected_backend}");
        assert!(
            response.text.starts_with("1. "),
            "{expected_backend}: {}",
            response.text
        );
    }

    // And through the trait object interface they are interchangeable.
    let translators: Vec<&dyn Translator> = vec![&rule, &neural, &neuron];
    let texts: Vec<String> = translators
        .iter()
        .map(|t| t.narrate(&request).unwrap().text)
        .collect();
    assert_eq!(texts.len(), 3);
}

#[test]
fn format_auto_detection_negative_paths() {
    // Empty and whitespace-only documents.
    assert_eq!(
        NarrationRequest::auto("").unwrap_err(),
        LanternError::EmptyInput
    );
    assert_eq!(
        NarrationRequest::auto(" \n\t ").unwrap_err(),
        LanternError::EmptyInput
    );

    // Unclassifiable text.
    match NarrationRequest::auto("Seq Scan on orders  (cost=0.00..35.50)").unwrap_err() {
        LanternError::UnknownFormat { snippet } => assert!(snippet.starts_with("Seq Scan")),
        other => panic!("{other:?}"),
    }

    let service = LanternBuilder::new().build().unwrap();

    // Truncated JSON: detected as JSON, fails in the parser.
    let truncated = &PG_DOC[..PG_DOC.len() / 2];
    match service
        .narrate(&NarrationRequest::auto(truncated).unwrap())
        .unwrap_err()
    {
        LanternError::Parse { format, .. } => assert_eq!(format, PlanFormat::PgJson),
        other => panic!("{other:?}"),
    }

    // XML with no RelOp anywhere: detected as XML, fails in the parser.
    let relop_less = "<ShowPlanXML><BatchSequence><Batch/></BatchSequence></ShowPlanXML>";
    match service
        .narrate(&NarrationRequest::auto(relop_less).unwrap())
        .unwrap_err()
    {
        LanternError::Parse { format, message } => {
            assert_eq!(format, PlanFormat::SqlServerXml);
            assert!(message.contains("RelOp"), "{message}");
        }
        other => panic!("{other:?}"),
    }

    // Wrong-vendor document: an arbitrary XML document that is not a
    // showplan at all.
    match service.narrate(&NarrationRequest::auto("<html><body/></html>").unwrap()) {
        Err(LanternError::Parse { format, .. }) => assert_eq!(format, PlanFormat::SqlServerXml),
        other => panic!("{other:?}"),
    }

    // Wrong-vendor *operators*: a valid showplan against a pg-only
    // store is a structured unknown-operator error, not a string.
    let pg_only = LanternBuilder::new()
        .store(PoemStore::with_default_pg_operators())
        .build()
        .unwrap();
    let xml = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple><QueryPlan>
        <RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp>
    </QueryPlan></StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;
    match pg_only
        .narrate(&NarrationRequest::auto(xml).unwrap())
        .unwrap_err()
    {
        LanternError::UnknownOperator { source, op } => {
            assert_eq!(source, "mssql");
            assert_eq!(op, "Table Scan");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn narration_wire_format_is_stable_for_service_responses() {
    let service = LanternBuilder::new().build().unwrap();
    let response = service
        .narrate(&NarrationRequest::auto(PG_DOC).unwrap())
        .unwrap();
    let wire = response.narration.to_json();
    let back = Narration::from_json(&wire).unwrap();
    assert_eq!(back, response.narration);
    assert_eq!(back.to_json(), wire);
    // The concrete/tagged pairing survives the wire: substituting each
    // step's bindings into its tagged text reproduces the text.
    for step in back.steps() {
        assert_eq!(
            lantern::core::substitute_tags(&step.tagged, &step.bindings),
            step.text
        );
    }
}

#[test]
fn batch_agrees_with_sequential_over_planner_output() {
    let db = Database::generate(&tpch_catalog(), 0.0002, 3);
    let planner = Planner::new(&db);
    let service = LanternBuilder::new().build().unwrap();
    let requests: Vec<NarrationRequest> = [
        "SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10",
        "SELECT c.c_name FROM customer c, orders o WHERE c.c_custkey = o.o_custkey LIMIT 5",
        "SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus",
    ]
    .iter()
    .map(|sql| {
        let plan = planner.plan(&parse_sql(sql).unwrap()).unwrap();
        NarrationRequest::from(&plan)
    })
    .collect();
    let sequential: Vec<String> = requests
        .iter()
        .map(|r| service.narrate(r).unwrap().text)
        .collect();
    let batched: Vec<String> = service
        .narrate_batch(&requests)
        .into_iter()
        .map(|r| r.unwrap().text)
        .collect();
    assert_eq!(sequential, batched);
}

/// The explain bridge: the same plan narrates identically whether it
/// reaches the service as a tree, a JSON artifact, or an XML artifact
/// rendered into the mssql vocabulary (which narrates with the mssql
/// catalog instead).
#[test]
fn explain_source_bridges_every_format() {
    let db = Database::generate(&tpch_catalog(), 0.0002, 3);
    let planner = Planner::new(&db);
    let plan = planner
        .plan(&parse_sql("SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000").unwrap())
        .unwrap();
    let service = LanternBuilder::new().build().unwrap();
    let via_tree = service
        .narrate(&NarrationRequest::new(explain_source(
            &plan,
            ExplainFormat::Text,
        )))
        .unwrap();
    let via_json = service
        .narrate(&NarrationRequest::new(explain_source(
            &plan,
            ExplainFormat::PgJson,
        )))
        .unwrap();
    assert_eq!(via_tree.narration, via_json.narration);
    let via_xml = service
        .narrate(&NarrationRequest::new(explain_source(
            &plan,
            ExplainFormat::SqlServerXml,
        )))
        .unwrap();
    assert!(via_xml.text.ends_with("to get the final results."));
}

/// Throughput acceptance probe (hardware-dependent, hence ignored in
/// tier-1; the `batch_throughput` bench reports the measured ratio).
///
/// Singles and batches share the store's version-cached snapshot, so
/// the batch advantage is the thread fan-out: ≥2x is expected on hosts
/// with ≥4 cores. On smaller hosts the probe only asserts that
/// batching never *loses* to sequential narration.
#[test]
#[ignore = "timing-sensitive: run explicitly, or see `cargo bench --bench batch_throughput`"]
fn batch_throughput_scales_with_cores() {
    use std::time::Instant;
    let db = Database::generate(&tpch_catalog(), 0.0002, 3);
    let planner = Planner::new(&db);
    let service = LanternBuilder::new().build().unwrap();
    let requests: Vec<NarrationRequest> = (0..8)
        .map(|i| {
            let sql = format!(
                "SELECT o_orderstatus, COUNT(*) FROM orders WHERE o_totalprice > {} \
                 GROUP BY o_orderstatus ORDER BY o_orderstatus",
                1000 + i
            );
            let plan = planner.plan(&parse_sql(&sql).unwrap()).unwrap();
            NarrationRequest::from(&plan)
        })
        .collect();
    let iters = 200;
    for _ in 0..10 {
        let _ = service.narrate_batch(&requests);
    }
    // Both paths collect their responses, as a service returning
    // results to callers would.
    let t0 = Instant::now();
    for _ in 0..iters {
        let out: Vec<_> = requests.iter().map(|r| service.narrate(r)).collect();
        std::hint::black_box(out);
    }
    let single = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(service.narrate_batch(&requests));
    }
    let batched = t0.elapsed();
    let speedup = single.as_secs_f64() / batched.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "batch speedup only {speedup:.2}x on {cores} cores"
        );
    } else {
        assert!(
            speedup >= 0.85,
            "batching regressed: {speedup:.2}x on {cores} core(s)"
        );
    }
}
