//! Property-based tests for the plan-diff engine against the
//! synthetic workload: for any generated plan, (a) rendering it
//! through either vendor format and diffing it against itself is
//! empty, and (b) diffing it against each of `lantern-gen`'s injected
//! mutations identifies *exactly* the injected change kind — through
//! the full serialize → parse path of both artifact formats, so
//! format-level lossiness can't silently erase or multiply edits.

use lantern::diff::diff_plans;
use lantern::gen::{ArtifactFormat, GenConfig, Mutation, PlanGenerator};
use lantern::plan::{parse_pg_json_plan, parse_sqlserver_xml_plan, PlanTree};
use proptest::prelude::*;

/// Serialize `tree` in `format` and parse the document back — the same
/// round trip a served diff request makes.
fn reparse(tree: &PlanTree, format: ArtifactFormat) -> PlanTree {
    let doc = PlanGenerator::render(tree, format);
    match format {
        ArtifactFormat::PgJson => parse_pg_json_plan(&doc).expect("generated pg json parses"),
        ArtifactFormat::SqlServerXml => {
            parse_sqlserver_xml_plan(&doc).expect("generated showplan parses")
        }
    }
}

fn expected_kind(kind: Mutation) -> &'static str {
    match kind {
        Mutation::SwapJoinInputs => "join-input-swap",
        Mutation::JitterEstimates => "estimate-delta",
        Mutation::TweakFilterConstant => "predicate-change",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn injected_mutations_are_identified_across_both_formats(seed in any::<u64>()) {
        let mut generator = PlanGenerator::new(
            GenConfig::default()
                .with_seed(seed)
                .with_ops(2, 5)
                .with_serial_stamps(false),
        );
        let base = generator.next_tree();
        for format in [ArtifactFormat::PgJson, ArtifactFormat::SqlServerXml] {
            let base_parsed = reparse(&base, format);

            // Self-diff through the serializer is empty and scoreless.
            let same = diff_plans(&base_parsed, &reparse(&base, format));
            prop_assert!(same.is_empty(), "{format:?}: {:?}", same.edits);
            prop_assert_eq!(same.score, 0.0);

            for kind in Mutation::ALL {
                // Not every mutation applies to every tree (no join to
                // swap, no filter to tweak); inapplicable ones skip.
                let Some(mutant) = generator.mutate_as(&base, kind) else {
                    continue;
                };
                let diff = diff_plans(&base_parsed, &reparse(&mutant, format));
                prop_assert!(
                    diff.kind_names() == [expected_kind(kind)],
                    "{:?} through {:?} misclassified: {:?}",
                    kind,
                    format,
                    diff.edits
                );
                prop_assert!(diff.score > 0.0, "{kind:?} must score above zero");
            }
        }
    }

    #[test]
    fn diff_is_antisymmetric_in_inserts_and_deletes(seed in any::<u64>()) {
        // Comparing A to B and B to A reports the same number of edits
        // with insert/delete kinds mirrored.
        let mut generator = PlanGenerator::new(
            GenConfig::default().with_seed(seed).with_ops(2, 5),
        );
        let a = generator.next_tree();
        let b = generator.next_tree();
        let forward = diff_plans(&a, &b);
        let backward = diff_plans(&b, &a);
        prop_assert_eq!(forward.edits.len(), backward.edits.len());
        let inserts = |d: &lantern::diff::PlanDiff| {
            d.edits
                .iter()
                .filter(|e| e.kind.kind_name() == "subtree-insert")
                .count()
        };
        let deletes = |d: &lantern::diff::PlanDiff| {
            d.edits
                .iter()
                .filter(|e| e.kind.kind_name() == "subtree-delete")
                .count()
        };
        prop_assert_eq!(inserts(&forward), deletes(&backward));
        prop_assert_eq!(deletes(&forward), inserts(&backward));
    }
}
