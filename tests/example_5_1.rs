//! Integration test reproducing the paper's Example 5.1 word for word:
//! the five-step narration of the Figure 4 QEP.

use lantern::core::RuleLantern;
use lantern::plan::{PlanNode, PlanTree};
use lantern::pool::default_pg_store;

fn figure_4_tree() -> PlanTree {
    let mut agg = PlanNode::new("Aggregate");
    agg.group_keys = vec!["i.proceeding_key".to_string()];
    agg.filter = Some("count(*) > 200".to_string());
    let mut sort = PlanNode::new("Sort");
    sort.sort_keys = vec!["i.proceeding_key".to_string()];
    PlanTree::new(
        "pg",
        PlanNode::new("Unique").with_child(
            agg.with_child(
                sort.with_child(
                    PlanNode::new("Hash Join")
                        .with_join_cond("((i.proceeding_key) = (p.pub_key))")
                        .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
                        .with_child(
                            PlanNode::new("Hash").with_child(
                                PlanNode::new("Seq Scan")
                                    .on_relation("publication")
                                    .with_filter("title LIKE '%July%'"),
                            ),
                        ),
                ),
            ),
        ),
    )
}

#[test]
fn example_5_1_five_steps() {
    let store = default_pg_store();
    let narration = RuleLantern::new(&store).narrate(&figure_4_tree()).unwrap();
    let steps: Vec<&str> = narration.sentences();
    assert_eq!(steps.len(), 5);
    // Step (1): unfiltered scan, identifier stays null.
    assert_eq!(steps[0], "perform sequential scan on inproceedings.");
    // Step (2): filtered scan -> T1, LIKE humanized to "containing".
    assert_eq!(
        steps[1],
        "perform sequential scan on publication and filtering on (title containing 'July') \
         to get the intermediate relation T1."
    );
    // Step (3): (HASH, HASH JOIN) cluster composed through ∘.
    assert_eq!(
        steps[2],
        "hash T1 and perform hash join on inproceedings and T1 on condition \
         ((i.proceeding_key) = (p.pub_key)) to get the intermediate relation T2."
    );
    // Step (4): (SORT, AGGREGATE) cluster with grouping and having.
    assert_eq!(
        steps[3],
        "sort T2 and perform aggregate on T2 with grouping on attribute i.proceeding_key \
         and filtering on (count(all) > 200) to get the intermediate relation T3."
    );
    // Step (5): root gets the final-results ending.
    assert_eq!(
        steps[4],
        "perform duplicate removal on T3 to get the final results."
    );
}

#[test]
fn example_3_1_query_plans_and_narrates_through_the_engine() {
    // The same scenario end-to-end: SQL text -> optimizer -> QEP ->
    // narration, over generated DBLP data.
    use lantern::catalog::dblp_catalog;
    use lantern::engine::{Database, Planner};
    use lantern::sql::parse_sql;

    let db = Database::generate(&dblp_catalog(), 0.0005, 31);
    let query = parse_sql(
        "SELECT DISTINCT(I.proceeding_key) FROM inproceedings I, publication P \
         WHERE I.proceeding_key = P.pub_key AND P.title LIKE '%July%' \
         GROUP BY I.proceeding_key HAVING COUNT(*) > 200",
    )
    .unwrap();
    let plan = Planner::new(&db).plan(&query).unwrap();
    let store = default_pg_store();
    let narration = RuleLantern::new(&store).narrate(&plan.tree()).unwrap();
    let text = narration.text();
    assert!(
        text.contains("sequential scan") || text.contains("index scan"),
        "{text}"
    );
    assert!(text.contains("to get the final results."), "{text}");
    assert!(text.contains("containing 'July'"), "{text}");
}
