//! Property-based integration over `lantern-gen`: every artifact the
//! generator emits — any seed, any format, duplicates and mutants
//! included — must auto-detect, parse, and narrate on all three
//! backends. This doubles as a fuzzer for the PG-JSON and SQL-Server-
//! XML parsers: the generator walks regions of the artifact space no
//! hand-written fixture covers.
//!
//! Backend expectations:
//!
//! * **rule** and **neural** narrate both vendor formats (their POEM
//!   store spans the combined pg + mssql vocabulary);
//! * **NEURON** narrates PostgreSQL plans but answers SQL Server XML
//!   with a *structured* [`LanternError::Backend`] — its hard-coded
//!   PostgreSQL rules are the baseline's defining limitation (paper
//!   US 5), and that limitation must surface as a typed error, never a
//!   panic or a wrong narration.

use lantern::core::PlanFormat;
use lantern::gen::{ArtifactFormat, GenConfig, PlanGenerator};
use lantern::neural::Qep2SeqConfig;
use lantern::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// All three backends, built once: the tiny neural model costs a few
/// hundred milliseconds to train and is shared across every proptest
/// case (translation *quality* is not under test — totality is).
fn backends() -> &'static (RuleTranslator, NeuralLantern, Neuron) {
    static BACKENDS: OnceLock<(RuleTranslator, NeuralLantern, Neuron)> = OnceLock::new();
    BACKENDS.get_or_init(|| {
        let store = lantern::pool::default_mssql_store();
        let db = Database::generate(&dblp_catalog(), 0.0003, 5);
        let mut config = Qep2SeqConfig {
            hidden: 16,
            ..Default::default()
        };
        config.train.epochs = 2;
        let (neural, _) = NeuralLantern::train_on(&db, &store, 10, config, 9);
        (RuleTranslator::new(store), neural, Neuron::new())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seed, duplicate/mutant mix on: detect → parse → narrate
    /// holds for every emitted artifact.
    #[test]
    fn every_artifact_narrates_on_all_backends(seed in any::<u64>()) {
        let (rule, neural, neuron) = backends();
        let config = GenConfig::default()
            .with_seed(seed)
            .with_duplicate_rate(0.2)
            .with_mutate_rate(0.2);
        for item in PlanGenerator::new(config).generate(6) {
            // Format sniffing agrees with what the generator claims.
            let detected = PlanSource::detect(&item.doc)
                .map_err(|e| format!("detect: {e}"))?;
            let expected = match item.format {
                ArtifactFormat::PgJson => PlanFormat::PgJson,
                ArtifactFormat::SqlServerXml => PlanFormat::SqlServerXml,
            };
            prop_assert!(
                detected == expected,
                "detected {detected:?}, generator claims {expected:?}; doc: {}",
                item.doc
            );

            let req = NarrationRequest::auto(item.doc.as_str())
                .map_err(|e| format!("parse: {e}\ndoc: {}", item.doc))?;

            // rule + neural: total over both vendor vocabularies.
            for (name, response) in [
                ("rule", rule.narrate(&req)),
                ("neural", neural.narrate(&req)),
            ] {
                let response = response.map_err(|e| format!("{name}: {e}\ndoc: {}", item.doc))?;
                prop_assert!(!response.text.is_empty(), "{} gave empty text", name);
            }

            // NEURON: pg narrates; mssql is a structured backend error.
            match item.format {
                ArtifactFormat::PgJson => {
                    let response = neuron
                        .narrate(&req)
                        .map_err(|e| format!("neuron: {e}\ndoc: {}", item.doc))?;
                    prop_assert!(!response.text.is_empty());
                }
                ArtifactFormat::SqlServerXml => {
                    match neuron.narrate(&req) {
                        Err(LanternError::Backend { .. }) => {}
                        Err(other) => {
                            return Err(format!(
                                "neuron answered XML with {other:?}, want Backend error"
                            ));
                        }
                        Ok(_) => {
                            return Err(
                                "neuron narrated SQL Server XML it has no rules for".to_string()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Same seed + config → byte-identical streams, from independent
    /// generator instances (the crate pins this too; repeating it here
    /// guards the facade re-export path end to end).
    #[test]
    fn generation_is_deterministic_across_instances(seed in any::<u64>()) {
        let config = GenConfig::default()
            .with_seed(seed)
            .with_duplicate_rate(0.4)
            .with_mutate_rate(0.3);
        let a: Vec<String> = PlanGenerator::new(config.clone())
            .generate(16)
            .into_iter()
            .map(|item| item.doc)
            .collect();
        let b: Vec<String> = PlanGenerator::new(config)
            .generate(16)
            .into_iter()
            .map(|item| item.doc)
            .collect();
        prop_assert_eq!(a, b);
    }
}
