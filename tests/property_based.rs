//! Property-based tests (proptest) on the core invariants: narration
//! totality over random plans, tag round-trips, tokenizer behaviour,
//! BLEU bounds, JSON/XML artifact round-trips, and executor/planner
//! agreement.

use lantern::core::{decompose_acts, substitute_tags, RuleLantern};
use lantern::plan::{parse_pg_json_plan, plan_to_pg_json, PlanNode, PlanTree};
use lantern::pool::default_pg_store;
use lantern::text::{bleu, detokenize, tokenize, BleuConfig, JsonValue};
use proptest::prelude::*;

/// Strategy: random well-formed PostgreSQL-vocabulary plan trees.
fn arb_plan(depth: u32) -> BoxedStrategy<PlanNode> {
    let leaf = (any::<u8>(), any::<bool>()).prop_map(|(rel, filtered)| {
        let mut n = PlanNode::new("Seq Scan").on_relation(format!("table_{}", rel % 7));
        if filtered {
            n.filter = Some(format!("col_{} > {}", rel % 5, rel));
        }
        n
    });
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_plan(depth - 1);
    let inner2 = arb_plan(depth - 1);
    prop_oneof![
        leaf,
        // Hash join with auxiliary Hash on the build side.
        (inner.clone(), inner2.clone(), any::<u8>()).prop_map(|(l, r, k)| {
            PlanNode::new("Hash Join")
                .with_join_cond(format!("((a.k{0}) = (b.k{0}))", k % 4))
                .with_child(l)
                .with_child(PlanNode::new("Hash").with_child(r))
        }),
        // Sorted aggregate.
        (inner.clone(), any::<u8>()).prop_map(|(c, g)| {
            let mut agg = PlanNode::new("Aggregate");
            agg.group_keys = vec![format!("g{}", g % 3)];
            let mut sort = PlanNode::new("Sort");
            sort.sort_keys = agg.group_keys.clone();
            agg.with_child(sort.with_child(c))
        }),
        // Unique / Limit wrappers.
        inner
            .clone()
            .prop_map(|c| PlanNode::new("Unique").with_child(c)),
        inner.prop_map(|c| PlanNode::new("Limit").with_child(c)),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn narration_is_total_over_engine_vocabulary(root in arb_plan(3)) {
        let store = default_pg_store();
        let tree = PlanTree::new("pg", root);
        let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
        // Non-empty, numbered, ends with the final-results sentence.
        prop_assert!(!narration.steps().is_empty());
        prop_assert!(narration.text().ends_with("to get the final results."));
        // No unresolved template placeholders leak into learner text.
        prop_assert!(!narration.text().contains("$R1$"));
        prop_assert!(!narration.text().contains("$cond$"));
    }

    #[test]
    fn act_tag_bindings_reconstruct_concrete_text(root in arb_plan(3)) {
        let store = default_pg_store();
        let tree = PlanTree::new("pg", root);
        for act in decompose_acts(&tree, &store).unwrap() {
            prop_assert_eq!(
                substitute_tags(&act.tagged_label, &act.bindings),
                act.concrete_label
            );
        }
    }

    #[test]
    fn acts_cover_all_nodes(root in arb_plan(3)) {
        let store = default_pg_store();
        let tree = PlanTree::new("pg", root);
        let acts = decompose_acts(&tree, &store).unwrap();
        let total_ops: usize = acts.iter().map(|a| a.ops.len()).sum();
        prop_assert_eq!(total_ops, tree.size());
    }

    #[test]
    fn pg_json_round_trip(root in arb_plan(3)) {
        let tree = PlanTree::new("pg", root);
        let json = plan_to_pg_json(&tree);
        let back = parse_pg_json_plan(&json).unwrap();
        prop_assert_eq!(back, tree);
    }

    #[test]
    fn tokenize_detokenize_stable(words in proptest::collection::vec("[a-z]{1,8}", 1..12)) {
        let sentence = format!("{}.", words.join(" "));
        let once = detokenize(&tokenize(&sentence));
        let twice = detokenize(&tokenize(&once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn bleu_bounded_and_reflexive(words in proptest::collection::vec("[a-z]{1,6}", 4..20)) {
        let toks: Vec<String> = words;
        let score = bleu(&toks, &[&toks[..]], BleuConfig { max_order: 4, smooth: false });
        prop_assert!((score - 1.0).abs() < 1e-9);
        let other: Vec<String> = toks.iter().rev().cloned().collect();
        let cross = bleu(&toks, &[&other[..]], BleuConfig::default());
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cross));
    }

    #[test]
    fn json_string_escaping_round_trips(s in "\\PC{0,40}") {
        let v = JsonValue::String(s.clone());
        let parsed = JsonValue::parse(&v.to_string_compact()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    #[test]
    fn sql_display_reparses(cols in proptest::collection::vec("[a-z]{2,8}", 1..4)) {
        // SELECT <cols> FROM orders-like identifier round trip.
        let sql = format!("SELECT {} FROM some_table WHERE {} > 3", cols.join(", "), cols[0]);
        let q1 = lantern::sql::parse_sql(&sql).unwrap();
        let q2 = lantern::sql::parse_sql(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }
}

#[test]
fn random_generated_queries_plan_and_execute_without_panic() {
    use lantern::catalog::imdb_catalog;
    use lantern::engine::{exec, Database, Planner, QueryGenConfig, RandomQueryGen};
    let db = Database::generate(&imdb_catalog(), 0.0001, 99);
    let planner = Planner::new(&db);
    let mut generator = RandomQueryGen::new(&db, 1234, QueryGenConfig::default());
    for q in generator.generate(60) {
        let plan = planner.plan(&q).expect("plans");
        exec::execute(&plan, &db).expect("executes");
    }
}

// ------------------------------------------------------- GEMM kernels

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The blocked `matmul` / `matmul_t` kernels agree with the naive
    /// per-element reference within 1e-5 (relative to magnitude) on
    /// random shapes straddling the lane/tile boundaries.
    #[test]
    fn blocked_matmul_matches_naive_reference(
        dims in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>())
    ) {
        use lantern::nn::kernel::{matmul, matmul_naive, matmul_t, matmul_t_naive};
        use lantern::nn::matrix::seeded_rng;
        use lantern::nn::Matrix;
        let (m, k, n, seed) = dims;
        let (m, k, n) = ((m % 17 + 1) as usize, (k % 65 + 1) as usize, (n % 17 + 1) as usize);
        let mut rng = seeded_rng(seed);
        let a = Matrix::uniform(m, k, 0.5, &mut rng);
        let b = Matrix::uniform(k, n, 0.5, &mut rng);
        let bt = Matrix::uniform(n, k, 0.5, &mut rng);
        let (fast, slow) = (matmul(&a, &b), matmul_naive(&a, &b));
        for (x, y) in fast.data.iter().zip(&slow.data) {
            prop_assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "matmul {x} vs {y}");
        }
        let (fast, slow) = (matmul_t(&a, &bt), matmul_t_naive(&a, &bt));
        for (x, y) in fast.data.iter().zip(&slow.data) {
            prop_assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "matmul_t {x} vs {y}");
        }
    }

    /// The fused `gemm_bias_act` agrees with the two-pass naive
    /// reference for every activation, and `add_matmul_tn` (the
    /// batched weight-gradient accumulate) with its reference.
    #[test]
    fn fused_and_accumulating_kernels_match_naive(
        dims in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>())
    ) {
        use lantern::nn::kernel::{
            add_matmul_tn, add_matmul_tn_naive, gemm_bias_act, gemm_bias_act_naive, Activation,
        };
        use lantern::nn::matrix::seeded_rng;
        use lantern::nn::Matrix;
        let (m, k, n, seed) = dims;
        let (m, k, n) = ((m % 17 + 1) as usize, (k % 65 + 1) as usize, (n % 17 + 1) as usize);
        let mut rng = seeded_rng(seed);
        let a = Matrix::uniform(m, k, 0.5, &mut rng);
        let bt = Matrix::uniform(n, k, 0.5, &mut rng);
        let bias: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 0.3).collect();
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            let fast = gemm_bias_act(&a, &bt, &bias, act);
            let slow = gemm_bias_act_naive(&a, &bt, &bias, act);
            for (x, y) in fast.data.iter().zip(&slow.data) {
                prop_assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "{act:?} {x} vs {y}");
            }
        }
        let ta = Matrix::uniform(k, m, 0.5, &mut rng);
        let tb = Matrix::uniform(k, n, 0.5, &mut rng);
        let mut fast = Matrix::uniform(m, n, 0.5, &mut rng);
        let mut slow = fast.clone();
        add_matmul_tn(&mut fast, &ta, &tb);
        add_matmul_tn_naive(&mut slow, &ta, &tb);
        for (x, y) in fast.data.iter().zip(&slow.data) {
            prop_assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "add_matmul_tn {x} vs {y}");
        }
    }
}
