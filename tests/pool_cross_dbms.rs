//! Integration: the POOL workflows of paper §4 across sources — every
//! statement family, the cross-engine transfer idiom, and the effect on
//! narration.

use lantern::core::RuleLantern;
use lantern::plan::{PlanNode, PlanTree};
use lantern::pool::{default_mssql_store, execute, PoolValue};

#[test]
fn sme_workflow_label_new_engine_via_transfer() {
    let store = default_mssql_store();
    // A DB2-style source appears: the SME creates zzjoin and transfers
    // hash-join wording from pg, then aliases it for learners.
    execute(
        "CREATE POPERATOR zzjoin FOR db2 (TYPE = 'binary', DESC = 'placeholder', COND = 'true')",
        &store,
    )
    .unwrap();
    execute(
        "UPDATE db2 SET desc = REPLACE((SELECT desc FROM pg WHERE pg.name = 'hashjoin'), \
         'hash', 'zigzag') WHERE db2.name = 'zzjoin'",
        &store,
    )
    .unwrap();
    execute(
        "UPDATE db2 SET alias = 'zigzag join' WHERE name = 'zzjoin'",
        &store,
    )
    .unwrap();

    let obj = store.find("db2", "zzjoin").unwrap();
    assert_eq!(obj.descs, vec!["perform zigzag join"]);
    assert_eq!(obj.display_name(), "zigzag join");

    // And the operator narrates immediately.
    let tree = PlanTree::new(
        "db2",
        PlanNode::new("zzjoin")
            .with_join_cond("((a.x) = (b.y))")
            .with_child(PlanNode::new("zscan").on_relation("a"))
            .with_child(PlanNode::new("zscan").on_relation("b")),
    );
    execute(
        "CREATE POPERATOR zscan FOR db2 (TYPE = 'unary', DESC = 'perform zigzag scan', \
         COND = 'false')",
        &store,
    )
    .unwrap();
    let narration = RuleLantern::new(&store).narrate(&tree).unwrap();
    assert!(
        narration
            .text()
            .contains("perform zigzag join on a and b on condition"),
        "{}",
        narration.text()
    );
}

#[test]
fn compose_statements_drive_lot_labels() {
    let store = default_mssql_store();
    let composed = execute(
        "COMPOSE hashbuild, hashmatch FROM mssql USING hashmatch.desc = 'perform hash match join'",
        &store,
    )
    .unwrap();
    assert_eq!(
        composed,
        PoolValue::Template(
            "hash $R1$ and perform hash match join on $R2$ and $R1$ on condition $cond$".into()
        )
    );
}

#[test]
fn adding_descriptions_changes_templates_not_structure() {
    let store = default_mssql_store();
    store.add_desc("pg", "seqscan", "read the whole table");
    // Narration still works and uses the *first* description (rule
    // determinism); the alternative is available to neural training.
    let tree = PlanTree::new("pg", PlanNode::new("Seq Scan").on_relation("orders"));
    let n = RuleLantern::new(&store).narrate(&tree).unwrap();
    assert!(
        n.text().contains("perform sequential scan on orders"),
        "{}",
        n.text()
    );
    let obj = store.find("pg", "seqscan").unwrap();
    assert!(obj.descs.len() >= 2);
}

#[test]
fn select_like_finds_join_family() {
    let store = default_mssql_store();
    let r = execute("SELECT name FROM pg WHERE name LIKE '%join%'", &store).unwrap();
    match r {
        PoolValue::Rows { rows, .. } => {
            // hashjoin and mergejoin match; nestedloop does not contain
            // the substring — LIKE is literal, as in SQL.
            assert!(rows.len() >= 2, "hashjoin and mergejoin expected: {rows:?}");
            assert!(rows.iter().any(|r| r[0].as_deref() == Some("hashjoin")));
        }
        other => panic!("{other:?}"),
    }
}
