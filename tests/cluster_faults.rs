//! Deterministic cluster fault-injection harness (ISSUE 9 tentpole).
//!
//! Boots a coordinator fronting three real replicas — each a full
//! [`LanternService`](lantern::LanternService) assembled through the
//! facade builder, exactly as the `lantern-serve` binary would — on
//! loopback, drives seeded `lantern-gen` traffic through the
//! coordinator, and injects faults mid-flight:
//!
//! * **kill / restart**: a replica dies mid-burst and later rejoins on
//!   its old port ([`reusable_listener`]); every request in the burst
//!   must end in a definite status (2xx/4xx/503) — none may hang, none
//!   may be lost;
//! * **stall**: a replica accepts connections and answers health
//!   probes but never answers narrations; the coordinator's read
//!   timeout must trip, fail the request over to the ring successor,
//!   and count the failover;
//! * **partition**: a replica misses catalog broadcasts while down and
//!   must converge from the coordinator's statement log after rejoin.
//!
//! The workload is reproducible: a fixed generator seed produces the
//! same documents, the same shard keys, and the same ring placement on
//! every run (ring placement is over the replica *addresses*, which
//! the OS assigns, so placement-sensitive assertions compute ownership
//! from the live ring rather than hard-coding it).

use lantern::builder::LanternBuilder;
use lantern::cache::CacheConfig;
use lantern::cluster::{serve_cluster, shard_key, ClusterConfig, ClusterHandle, HashRing};
use lantern::gen::{FormatMix, GenConfig, PlanGenerator};
use lantern::serve::{reusable_listener, HttpClient, ServeConfig, ServerHandle};
use lantern::text::json::JsonValue;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 0x5106_0D21;
const VNODES: usize = 64;

/// A replica assembled the way the binary assembles one: default
/// combined store, narration cache on, served over a caller-bound
/// listener so restarts can reclaim the port.
fn boot_replica_on(listener: TcpListener) -> ServerHandle {
    LanternBuilder::new()
        .cache(CacheConfig {
            max_entries: 512,
            ..CacheConfig::default()
        })
        .build()
        .expect("assemble replica service")
        .serve_on_listener(
            listener,
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .expect("replica boots")
}

fn boot_replica() -> ServerHandle {
    boot_replica_on(TcpListener::bind("127.0.0.1:0").expect("bind replica"))
}

/// Coordinator with fault-harness timings: fast probes so health flips
/// are observable within the test, short read timeout so a stalled
/// replica trips failover in milliseconds rather than seconds.
fn boot_coordinator(replicas: Vec<SocketAddr>) -> ClusterHandle {
    serve_cluster(
        ClusterConfig {
            replicas,
            virtual_nodes: VNODES,
            workers: 2,
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(1500),
            retry_backoff: Duration::from_millis(5),
            probe_interval: Duration::from_millis(50),
            ..ClusterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("coordinator boots")
}

/// The seeded burst: mixed-format generator artifacts with heavy
/// duplication, the same workload shape the soak subcommand drives.
fn burst_docs(count: usize) -> Vec<String> {
    let config = GenConfig::default()
        .with_seed(SEED)
        .with_duplicate_rate(0.6)
        .with_mutate_rate(0.0)
        .with_format(FormatMix::Mixed);
    PlanGenerator::new(config)
        .generate(count)
        .into_iter()
        .map(|item| item.doc)
        .collect()
}

fn get_json(client: &mut HttpClient, path: &str) -> JsonValue {
    let resp = client.get(path).expect("GET");
    assert_eq!(resp.status, 200, "{path}: {}", resp.body);
    resp.json().expect("JSON body")
}

/// Wait until `check` passes or fail loudly: probe loops, health
/// flips, and catalog replays are asynchronous but bounded.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// The ring the coordinator builds for this fleet — same node names
/// (stringified addresses, config order), same vnode count.
fn fleet_ring(addrs: &[SocketAddr]) -> HashRing {
    let names: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    HashRing::new(&names, VNODES)
}

#[test]
fn seeded_schedule_and_placement_are_deterministic() {
    // Same seed, independent generators: byte-identical schedules.
    let first = burst_docs(120);
    let second = burst_docs(120);
    assert_eq!(
        first, second,
        "generator must be deterministic under a fixed seed"
    );

    // Shard keys (and hence ring placement for any fixed fleet) are a
    // pure function of the document.
    let addrs: Vec<SocketAddr> = (0..3)
        .map(|i| format!("10.9.0.{}:7100", i + 1).parse().unwrap())
        .collect();
    let ring = fleet_ring(&addrs);
    let owners_a: Vec<Option<usize>> = first.iter().map(|d| ring.route(shard_key(d))).collect();
    let owners_b: Vec<Option<usize>> = second.iter().map(|d| ring.route(shard_key(d))).collect();
    assert_eq!(owners_a, owners_b);
    assert!(owners_a.iter().all(Option::is_some));
}

#[test]
fn ring_rebalance_moves_only_the_dead_nodes_range() {
    let addrs: Vec<SocketAddr> = (0..3)
        .map(|i| format!("10.9.1.{}:7200", i + 1).parse().unwrap())
        .collect();
    let full = fleet_ring(&addrs);
    let docs = burst_docs(300);

    // Node 1 dies; the survivors rebuild the ring without it.
    let survivors = [addrs[0], addrs[2]];
    let reduced = fleet_ring(&survivors);
    let reindex = |old: usize| match old {
        0 => 0,
        2 => 1,
        other => panic!("dead node {other} must not own keys in the reduced ring"),
    };

    let mut moved = 0usize;
    for doc in &docs {
        let key = shard_key(doc);
        let old_owner = full.route(key).unwrap();
        let new_owner = reduced.route(key).unwrap();
        if old_owner == 1 {
            // The dead node's keys land exactly on the old ring's
            // first surviving successor — the failover target the
            // coordinator was already using while the node was down.
            moved += 1;
            let successor = *full
                .successors(key)
                .iter()
                .find(|&&n| n != 1)
                .expect("a surviving successor");
            assert_eq!(new_owner, reindex(successor), "doc {doc:.40}");
        } else {
            // Every other key keeps its owner: no collateral churn.
            assert_eq!(new_owner, reindex(old_owner), "doc {doc:.40}");
        }
    }
    // The dead node owned a meaningful share of a 300-key burst.
    assert!(moved > 0, "node 1 owned no keys — ring is degenerate");
}

#[test]
fn kill_and_restart_mid_burst_loses_no_requests() {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs.clone());
    let coordinator_addr = coordinator.addr();

    let docs = burst_docs(240);
    let total = docs.len();
    let completed = Arc::new(AtomicUsize::new(0));
    let outcomes: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::with_capacity(total)));

    // Three clients stripe the schedule deterministically (client i
    // takes docs i, i+3, i+6, ...) and record every final status.
    let mut clients = Vec::new();
    for stripe in 0..3usize {
        let docs: Vec<String> = docs.iter().skip(stripe).step_by(3).cloned().collect();
        let completed = Arc::clone(&completed);
        let outcomes = Arc::clone(&outcomes);
        clients.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(coordinator_addr).expect("connect");
            for doc in &docs {
                // A request may legitimately be shed (503) while the
                // fleet is degraded, but it must always end: the
                // coordinator's bounded retries guarantee an answer.
                // If the coordinator closed this connection (the shed
                // path does), reconnecting once and resending is the
                // harness client's job — the request itself must
                // never be lost.
                let status = match client.post("/narrate", doc) {
                    Ok(resp) => resp.status,
                    Err(_) => {
                        client = HttpClient::connect(coordinator_addr).expect("reconnect");
                        match client.post("/narrate", doc) {
                            Ok(resp) => resp.status,
                            Err(e) => panic!("request lost after reconnect: {e}"),
                        }
                    }
                };
                outcomes.lock().unwrap().push(status);
                completed.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }

    // Fault injection, keyed off burst progress: kill replica 0 a
    // third of the way in, resurrect it on the same port two thirds in.
    wait_for("first third of the burst", || {
        completed.load(Ordering::SeqCst) >= total / 3
    });
    let victim_addr = addrs[0];
    replicas.remove(0).shutdown().expect("kill replica 0");

    wait_for("second third of the burst", || {
        completed.load(Ordering::SeqCst) >= 2 * total / 3
    });
    let listener = reusable_listener(victim_addr).expect("rebind victim port");
    let revived = boot_replica_on(listener);

    for client in clients {
        client.join().expect("client thread");
    }

    // No request lost: every scheduled send produced exactly one
    // definite outcome, and nothing outside the allowed status set.
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), total, "every request must resolve");
    assert!(
        outcomes.iter().all(|s| *s == 200 || *s == 503),
        "unexpected status in {outcomes:?}"
    );
    let ok = outcomes.iter().filter(|s| **s == 200).count();
    assert!(
        ok >= total * 9 / 10,
        "too many shed requests: {ok}/{total} succeeded"
    );

    // The revived replica rejoins: once the probe marks the whole
    // fleet healthy, a full verification pass narrates everything.
    let mut client = HttpClient::connect(coordinator_addr).expect("connect");
    wait_for("revived replica marked healthy", || {
        let catalog = get_json(&mut client, "/catalog");
        let entries = catalog.get("replicas").and_then(|r| r.as_array()).unwrap();
        entries.len() == 3
            && entries
                .iter()
                .all(|e| e.get("healthy").and_then(JsonValue::as_bool) == Some(true))
    });
    for doc in &docs {
        let resp = client.post("/narrate", doc).expect("post-recovery narrate");
        assert_eq!(resp.status, 200, "post-recovery: {}", resp.body);
    }

    coordinator.shutdown().unwrap();
    revived.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

/// A replica that answers health/catalog probes but stalls every other
/// request forever: the shape of a wedged worker pool behind a live
/// accept loop. Connections are accepted and read, then left hanging.
fn spawn_stalled_replica() -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stalled replica");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || stalled_connection(stream, &conn_stop));
        }
    });
    (addr, stop, accept)
}

/// Minimal HTTP loop for the stalled fake: parse just enough of each
/// request to recognise the probe (`GET /catalog`) and answer it; any
/// other request is swallowed without a response until `stop`.
fn stalled_connection(stream: TcpStream, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut request_line = String::new();
        match reader.read_line(&mut request_line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => continue, // read timeout: poll the stop flag
        }
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            match reader.read_line(&mut header) {
                Ok(0) => return,
                Ok(_) => {}
                Err(_) => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some(len) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = len.parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        if content_length > 0 && reader.read_exact(&mut body).is_err() {
            return;
        }
        if request_line.starts_with("GET /catalog") {
            let body = r#"{"version":1,"applied_seq":0}"#;
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                body.len(),
                body
            );
            if writer.write_all(resp.as_bytes()).is_err() {
                return;
            }
            let _ = writer.flush();
            continue;
        }
        // Anything else — narrations, stats — stalls until the test
        // tears the fake down. The coordinator's read timeout is the
        // only way out.
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        return;
    }
}

#[test]
fn stalled_replica_trips_read_timeout_and_fails_over() {
    let replicas: Vec<ServerHandle> = (0..2).map(|_| boot_replica()).collect();
    let (stalled_addr, stop, accept) = spawn_stalled_replica();

    // The stalled node sits mid-fleet so its ring range is real.
    let addrs = vec![replicas[0].addr(), stalled_addr, replicas[1].addr()];
    let coordinator = serve_cluster(
        ClusterConfig {
            replicas: addrs.clone(),
            virtual_nodes: VNODES,
            workers: 2,
            connect_timeout: Duration::from_millis(250),
            // Short enough that a stalled narration fails over fast;
            // the probe's GET /catalog is answered, so only stalled
            // *narrations* burn this budget.
            read_timeout: Duration::from_millis(200),
            retry_backoff: Duration::from_millis(5),
            probe_interval: Duration::from_millis(50),
            ..ClusterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("coordinator boots");

    // Find documents the ring assigns to the stalled node — ports are
    // OS-assigned, so ownership is computed, not hard-coded.
    let ring = fleet_ring(&addrs);
    let mut stalled_owned = Vec::new();
    let mut survivor_owned = Vec::new();
    for i in 0.. {
        let doc =
            format!(r#"{{"Plan": {{"Node Type": "Seq Scan", "Relation Name": "stall_{i}"}}}}"#);
        match ring.route(shard_key(&doc)) {
            Some(1) => {
                if stalled_owned.len() < 4 {
                    stalled_owned.push(doc);
                }
            }
            Some(_) => {
                if survivor_owned.len() < 4 {
                    survivor_owned.push(doc);
                }
            }
            None => unreachable!("non-empty ring routes every key"),
        }
        if stalled_owned.len() == 4 && survivor_owned.len() == 4 {
            break;
        }
        assert!(i < 10_000, "ring never assigned 4 docs to the stalled node");
    }

    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");
    // Requests owned by the stalled node: the first attempt stalls,
    // the read timeout trips, and the ring successor answers. The
    // caller only ever sees a 200.
    for doc in &stalled_owned {
        let resp = client.post("/narrate", doc).expect("narrate");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    // Requests owned by live nodes are never dragged into the stall.
    for doc in &survivor_owned {
        let resp = client.post("/narrate", doc).expect("narrate");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    assert!(
        coordinator.stats().failovers.load(Ordering::Relaxed) > 0,
        "failover counter never moved"
    );

    // The stalled node is eventually marked unhealthy-for-narrations
    // or re-probed healthy; either way the fleet keeps answering.
    let resp = client.post("/narrate", &stalled_owned[0]).expect("narrate");
    assert_eq!(resp.status, 200);

    coordinator.shutdown().unwrap();
    stop.store(true, Ordering::SeqCst);
    // Poke the accept loop out of its blocking accept.
    let _ = TcpStream::connect(stalled_addr);
    accept.join().expect("stalled accept thread");
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}

#[test]
fn partitioned_replica_converges_on_the_catalog_after_rejoin() {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| boot_replica()).collect();
    let addrs: Vec<SocketAddr> = replicas.iter().map(|r| r.addr()).collect();
    let coordinator = boot_coordinator(addrs.clone());
    let mut client = HttpClient::connect(coordinator.addr()).expect("connect");

    // Partition replica 1 from broadcasts the crude way: kill it.
    let victim_addr = addrs[1];
    replicas.remove(1).shutdown().expect("partition replica 1");

    // Two catalog mutations while partitioned: only two replicas see
    // the broadcast, the coordinator logs both.
    for (i, stmt) in [
        "UPDATE pg SET desc = 'walk the relation row by row' WHERE name = 'seqscan'",
        "UPDATE pg SET desc = 'probe the hash table' WHERE name = 'hashjoin'",
    ]
    .iter()
    .enumerate()
    {
        let resp = client.post("/catalog/apply", stmt).expect("apply");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let ack = resp.json().expect("json");
        assert_eq!(
            ack.get("seq").and_then(JsonValue::as_f64),
            Some((i + 1) as f64)
        );
        let applied = ack
            .get("replicas")
            .and_then(|r| r.as_array())
            .unwrap()
            .iter()
            .filter(|l| l.get("status").and_then(JsonValue::as_str) == Some("applied"))
            .count();
        assert_eq!(applied, 2, "partitioned replica must miss the broadcast");
    }

    // Rejoin on the old port with a *fresh* service — empty log
    // position, pristine store. The probe loop notices applied_seq 0
    // against a log of 2 and replays the suffix.
    let listener = reusable_listener(victim_addr).expect("rebind victim port");
    let revived = boot_replica_on(listener);
    wait_for("catalog convergence across the fleet", || {
        let catalog = get_json(&mut client, "/catalog");
        let entries = catalog.get("replicas").and_then(|r| r.as_array()).unwrap();
        entries.iter().all(|e| {
            e.get("applied_seq").and_then(JsonValue::as_f64) == Some(2.0)
                && e.get("healthy").and_then(JsonValue::as_bool) == Some(true)
        })
    });

    // The revived replica answers with the *mutated* wording even
    // though it never saw the broadcast: ask it directly, bypassing
    // the coordinator, so no other replica can mask a stale store.
    let mut direct = HttpClient::connect(victim_addr).expect("connect revived");
    let catalog = get_json(&mut direct, "/catalog");
    assert_eq!(
        catalog.get("applied_seq").and_then(JsonValue::as_f64),
        Some(2.0)
    );
    let doc = r#"{"Plan": {"Node Type": "Seq Scan", "Relation Name": "orders"}}"#;
    let resp = direct.post("/narrate", doc).expect("narrate revived");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let text = resp
        .json()
        .expect("json")
        .get("text")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .unwrap();
    assert!(
        text.contains("walk the relation row by row"),
        "replayed catalog not reflected in narration: {text}"
    );

    coordinator.shutdown().unwrap();
    revived.shutdown().unwrap();
    for replica in replicas {
        replica.shutdown().unwrap();
    }
}
