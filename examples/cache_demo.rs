//! Cold-vs-warm narration through the builder with the plan-fingerprint
//! cache enabled: the classroom pattern (the same `EXPLAIN` artifact
//! submitted over and over) timed end to end, plus in-batch dedup and
//! the cache counters.
//!
//! Run with: `cargo run --release --example cache_demo`

use lantern::prelude::*;
use std::time::Instant;

const PG_DOC: &str = r#"{"Plan": {"Node Type": "Aggregate",
    "Plans": [{"Node Type": "Hash Join",
        "Hash Cond": "((i.proceeding_key) = (p.pub_key))",
        "Plans": [
            {"Node Type": "Seq Scan", "Relation Name": "inproceedings"},
            {"Node Type": "Hash",
             "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                        "Filter": "title LIKE '%July%'"}]}
        ]}]}}"#;

/// The same plan, serialized with different key order and whitespace —
/// a classmate's byte-different but semantically identical submission.
const PG_DOC_REORDERED: &str = r#"{ "Plan": { "Plans": [{"Hash Cond": "((i.proceeding_key) = (p.pub_key))",
        "Plans": [ {"Relation Name": "inproceedings", "Node Type": "Seq Scan"},
            {"Plans": [{"Filter": "title LIKE '%July%'", "Node Type": "Seq Scan",
                        "Relation Name": "publication"}], "Node Type": "Hash"} ],
        "Node Type": "Hash Join"}], "Node Type": "Aggregate" } }"#;

fn main() {
    let service = LanternBuilder::new()
        .cache(CacheConfig::default())
        .build()
        .unwrap();

    // Cold: the first submission pays the full pipeline.
    let t0 = Instant::now();
    let cold = service.narrate_document(PG_DOC).unwrap();
    let cold_t = t0.elapsed();
    println!("cold narration ({:>9.1?}):\n{}\n", cold_t, cold.text);

    // Warm: the identical re-submission answers from the cache.
    let t0 = Instant::now();
    let warm = service.narrate_document(PG_DOC).unwrap();
    let warm_t = t0.elapsed();
    assert_eq!(cold, warm, "a hit is byte-identical");
    println!(
        "warm narration ({:>9.1?}): identical, {:.0}x faster",
        warm_t,
        cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-9)
    );

    // A reordered document is a different byte string but the *same*
    // plan: the canonical fingerprint still hits.
    let t0 = Instant::now();
    let reordered = service.narrate_document(PG_DOC_REORDERED).unwrap();
    println!(
        "reordered-JSON narration ({:>9.1?}): {}",
        t0.elapsed(),
        if reordered == cold {
            "same cache entry"
        } else {
            "MISMATCH"
        }
    );

    // A batch with 75% duplicates narrates each unique plan once.
    let reqs: Vec<NarrationRequest> = (0..8)
        .map(|_| NarrationRequest::auto(PG_DOC).unwrap())
        .collect();
    let t0 = Instant::now();
    let out = service.narrate_batch(&reqs);
    println!(
        "\nbatch of {} duplicate submissions: {:?} in {:.1?}",
        reqs.len(),
        out.iter().filter(|r| r.is_ok()).count(),
        t0.elapsed()
    );

    let stats = service.cache_stats().unwrap();
    println!(
        "\ncache counters: entries={} bytes={} hits={} misses={} doc_hits={} batch_dedup_hits={}",
        stats.entries,
        stats.bytes,
        stats.hits,
        stats.misses,
        stats.doc_hits,
        stats.batch_dedup_hits
    );
}
