//! Cross-RDBMS portability (the paper's §7.1 extension story and US 5):
//! label SQL Server operators with POOL — partly by *transferring*
//! descriptions from the PostgreSQL source — then narrate an XML
//! showplan. NEURON, whose rules are hard-coded for PostgreSQL, fails
//! on the same plan.
//!
//! Both backends are driven through the **same** `Translator` API with
//! the **same** `NarrationRequest`, which is exactly what the paper's
//! side-by-side comparison needs.
//!
//! Run with: `cargo run --release --example cross_dbms`

use lantern::pool::{default_mssql_store, execute};
use lantern::prelude::*;

fn main() {
    // An SDSS-style SQL Server showplan.
    let showplan = r#"<ShowPlanXML Version="1.5"><BatchSequence><Batch><Statements>
      <StmtSimple><QueryPlan>
        <RelOp PhysicalOp="Hash Match" LogicalOp="Inner Join" EstimateRows="120"
               EstimatedTotalSubtreeCost="3.5">
          <JoinPredicate>((s.bestobjid) = (p.objid))</JoinPredicate>
          <RelOp PhysicalOp="Table Scan" EstimateRows="5000" EstimatedTotalSubtreeCost="1.0">
            <Object Table="photoobj" Alias="p"/>
          </RelOp>
          <RelOp PhysicalOp="Hash Build" EstimateRows="800" EstimatedTotalSubtreeCost="0.9">
            <RelOp PhysicalOp="Table Scan" EstimateRows="800" EstimatedTotalSubtreeCost="0.8">
              <Object Table="specobj" Alias="s"/>
              <Predicate>class = 'QSO'</Predicate>
            </RelOp>
          </RelOp>
        </RelOp>
      </QueryPlan></StmtSimple>
    </Statements></Batch></BatchSequence></ShowPlanXML>"#;

    // The mssql catalog was authored with POOL; the paper's idiom of
    // transferring wording across engines works live:
    let store = default_mssql_store();
    execute(
        "UPDATE mssql SET defn = (SELECT defn FROM pg WHERE pg.name = 'hashjoin') \
         WHERE mssql.name = 'hashmatch'",
        &store,
    )
    .expect("cross-source transfer");

    // One request, two backends, one API.
    let request = NarrationRequest::auto(showplan).expect("recognizable artifact");

    let lantern = LanternBuilder::new()
        .store(store)
        .build()
        .expect("rule service");
    println!("LANTERN on a SQL Server plan:\n");
    println!("{}\n", lantern.narrate(&request).expect("narrates").text);

    // NEURON cannot serve this plan at all (US 5) — and says so through
    // the same structured error type every backend uses.
    let neuron = LanternBuilder::new()
        .backend(Backend::Neuron)
        .build()
        .expect("baseline service");
    match neuron.narrate(&request) {
        Ok(_) => unreachable!("NEURON has no SQL Server rules"),
        Err(e) => println!("NEURON on the same plan: {e}"),
    }
}
