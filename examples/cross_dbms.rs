//! Cross-RDBMS portability (the paper's §7.1 extension story and US 5):
//! label SQL Server operators with POOL — partly by *transferring*
//! descriptions from the PostgreSQL source — then narrate an XML
//! showplan. NEURON, whose rules are hard-coded for PostgreSQL, fails
//! on the same plan.
//!
//! Run with: `cargo run --release --example cross_dbms`

use lantern::core::Lantern;
use lantern::neuron::Neuron;
use lantern::plan::parse_sqlserver_xml_plan;
use lantern::pool::{default_mssql_store, execute};

fn main() {
    // An SDSS-style SQL Server showplan.
    let showplan = r#"<ShowPlanXML Version="1.5"><BatchSequence><Batch><Statements>
      <StmtSimple><QueryPlan>
        <RelOp PhysicalOp="Hash Match" LogicalOp="Inner Join" EstimateRows="120"
               EstimatedTotalSubtreeCost="3.5">
          <JoinPredicate>((s.bestobjid) = (p.objid))</JoinPredicate>
          <RelOp PhysicalOp="Table Scan" EstimateRows="5000" EstimatedTotalSubtreeCost="1.0">
            <Object Table="photoobj" Alias="p"/>
          </RelOp>
          <RelOp PhysicalOp="Hash Build" EstimateRows="800" EstimatedTotalSubtreeCost="0.9">
            <RelOp PhysicalOp="Table Scan" EstimateRows="800" EstimatedTotalSubtreeCost="0.8">
              <Object Table="specobj" Alias="s"/>
              <Predicate>class = 'QSO'</Predicate>
            </RelOp>
          </RelOp>
        </RelOp>
      </QueryPlan></StmtSimple>
    </Statements></Batch></BatchSequence></ShowPlanXML>"#;

    // The mssql catalog was authored with POOL; the paper's idiom of
    // transferring wording across engines works live:
    let store = default_mssql_store();
    execute(
        "UPDATE mssql SET defn = (SELECT defn FROM pg WHERE pg.name = 'hashjoin') \
         WHERE mssql.name = 'hashmatch'",
        &store,
    )
    .expect("cross-source transfer");

    let lantern = Lantern::new(store);
    println!("LANTERN on a SQL Server plan:\n");
    println!(
        "{}\n",
        lantern
            .narrate_sqlserver_xml(showplan)
            .expect("narrates")
            .text()
    );

    // NEURON cannot serve this plan at all (US 5).
    let tree = parse_sqlserver_xml_plan(showplan).expect("parses");
    match Neuron::new().describe(&tree) {
        Ok(_) => unreachable!("NEURON has no SQL Server rules"),
        Err(e) => println!("NEURON on the same plan: {e}"),
    }
}
