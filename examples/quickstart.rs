//! Quickstart: turn a PostgreSQL `EXPLAIN (FORMAT JSON)` document into
//! a learner-friendly narration — the paper's core use case.
//!
//! Run with: `cargo run --release --example quickstart`

use lantern::core::Lantern;
use lantern::pool::default_pg_store;

fn main() {
    // A plan artifact as PostgreSQL would emit it (the paper's
    // Figure 1 / Figure 4 example on the DBLP schema).
    let explain_json = r#"[{"Plan": {
        "Node Type": "Unique",
        "Plans": [{
            "Node Type": "Aggregate", "Strategy": "Sorted",
            "Group Key": ["i.proceeding_key"],
            "Filter": "count(*) > 200",
            "Plans": [{
                "Node Type": "Sort", "Sort Key": ["i.proceeding_key"],
                "Plans": [{
                    "Node Type": "Hash Join",
                    "Hash Cond": "((i.proceeding_key) = (p.pub_key))",
                    "Plans": [
                        {"Node Type": "Seq Scan", "Relation Name": "inproceedings", "Alias": "i"},
                        {"Node Type": "Hash",
                         "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                                    "Alias": "p", "Filter": "title LIKE '%July%'"}]}
                    ]
                }]
            }]
        }]
    }}]"#;

    // The POEM store holds the operator labels two SMEs authored with
    // POOL; `default_pg_store()` ships the PostgreSQL catalog.
    let lantern = Lantern::new(default_pg_store());
    let narration = lantern.narrate_pg_json(explain_json).expect("valid plan");

    println!("How PostgreSQL executes the query:\n");
    println!("{}", narration.text());

    // POOL is live: ask for an operator definition the way a learner's
    // tool would.
    let defn = lantern_pool::execute(
        "SELECT defn FROM pg WHERE name = 'hashjoin'",
        lantern.store(),
    )
    .expect("POOL query");
    println!("\nWhat is a hash join? {defn:?}");
}
