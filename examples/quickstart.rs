//! Quickstart: turn a PostgreSQL `EXPLAIN (FORMAT JSON)` document into
//! a learner-friendly narration — the paper's core use case — through
//! the unified `LanternBuilder` / `Translator` API.
//!
//! Run with: `cargo run --release --example quickstart`

use lantern::prelude::*;

fn main() {
    // A plan artifact as PostgreSQL would emit it (the paper's
    // Figure 1 / Figure 4 example on the DBLP schema).
    let explain_json = r#"[{"Plan": {
        "Node Type": "Unique",
        "Plans": [{
            "Node Type": "Aggregate", "Strategy": "Sorted",
            "Group Key": ["i.proceeding_key"],
            "Filter": "count(*) > 200",
            "Plans": [{
                "Node Type": "Sort", "Sort Key": ["i.proceeding_key"],
                "Plans": [{
                    "Node Type": "Hash Join",
                    "Hash Cond": "((i.proceeding_key) = (p.pub_key))",
                    "Plans": [
                        {"Node Type": "Seq Scan", "Relation Name": "inproceedings", "Alias": "i"},
                        {"Node Type": "Hash",
                         "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                                    "Alias": "p", "Filter": "title LIKE '%July%'"}]}
                    ]
                }]
            }]
        }]
    }}]"#;

    // One builder configures the whole service: backend, store,
    // paraphrasing, rendering. The default store ships the PostgreSQL
    // and SQL Server catalogs two SMEs authored with POOL.
    let service = LanternBuilder::new().build().expect("valid configuration");

    // The request auto-detects the vendor format (JSON vs XML).
    let request = NarrationRequest::auto(explain_json).expect("recognizable artifact");
    let response = service.narrate(&request).expect("valid plan");

    println!(
        "How PostgreSQL executes the query ({} backend):\n",
        response.backend
    );
    println!("{}", response.text);

    // Narrations serialize to a stable JSON wire form for services.
    println!(
        "\nFirst step on the wire: {}",
        response.narration.steps()[0]
            .to_json_value()
            .to_string_compact()
    );

    // POOL is live: ask for an operator definition the way a learner's
    // tool would.
    let defn = lantern_pool::execute(
        "SELECT defn FROM pg WHERE name = 'hashjoin'",
        service.store(),
    )
    .expect("POOL query");
    println!("\nWhat is a hash join? {defn:?}");
}
