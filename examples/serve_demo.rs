//! End-to-end tour of the narration service: boot a server on an
//! ephemeral port, round-trip single and batched narrations over real
//! sockets, show an error response, read the stats, shut down.
//!
//! Run with: `cargo run --example serve_demo`

use lantern::prelude::*;

const PG_DOC: &str = r#"{"Plan": {"Node Type": "Aggregate",
    "Plans": [{"Node Type": "Hash Join",
        "Hash Cond": "((i.proceeding_key) = (p.pub_key))",
        "Plans": [
            {"Node Type": "Seq Scan", "Relation Name": "inproceedings"},
            {"Node Type": "Hash",
             "Plans": [{"Node Type": "Seq Scan", "Relation Name": "publication",
                        "Filter": "title LIKE '%July%'"}]}
        ]}]}}"#;

const XML_DOC: &str = r#"<ShowPlanXML><BatchSequence><Batch><Statements><StmtSimple>
    <QueryPlan><RelOp PhysicalOp="Table Scan"><Object Table="photoobj"/></RelOp></QueryPlan>
    </StmtSimple></Statements></Batch></BatchSequence></ShowPlanXML>"#;

fn main() {
    // One builder call: assemble the default rule service and boot the
    // HTTP loop on an ephemeral port.
    let handle = LanternBuilder::new().serve("127.0.0.1:0").unwrap();
    println!("serving on http://{}\n", handle.addr());

    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Liveness.
    let health = client.get("/healthz").unwrap();
    println!("GET /healthz          → {} {}", health.status, health.body);

    // Single narration: the paper's Figure 4 plan, pasted as a raw
    // PostgreSQL EXPLAIN (FORMAT JSON) document.
    let resp = client.post("/narrate", PG_DOC).unwrap();
    let text = resp
        .json()
        .unwrap()
        .get("text")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap();
    println!("\nPOST /narrate         → {}\n{text}\n", resp.status);

    // Same endpoint, SQL Server artifact, bulleted rendering.
    let resp = client.post("/narrate?style=bulleted", XML_DOC).unwrap();
    let text = resp
        .json()
        .unwrap()
        .get("text")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap();
    println!(
        "POST /narrate?style=bulleted (SQL Server XML) → {}\n{text}\n",
        resp.status
    );

    // Batched: a JSON array of documents, one result per entry — the
    // malformed classmate fails alone, per item.
    let batch_body = format!(
        "[{}, {}, \"this is not a plan\"]",
        lantern::text::json::JsonValue::String(PG_DOC.to_string()).to_string_compact(),
        lantern::text::json::JsonValue::String(XML_DOC.to_string()).to_string_compact(),
    );
    let resp = client.post("/narrate/batch", &batch_body).unwrap();
    println!("POST /narrate/batch   → {}", resp.status);
    if let lantern::text::json::JsonValue::Array(items) = resp.json().unwrap() {
        for (i, item) in items.iter().enumerate() {
            match item.get("text").and_then(|v| v.as_str()) {
                Some(text) => println!("  [{i}] ok: {}…", &text[..text.len().min(60)]),
                None => println!("  [{i}] err: {}", item.to_string_compact()),
            }
        }
    }

    // Error mapping: an empty document is a 400 with a structured body.
    let resp = client.post("/narrate", "").unwrap();
    println!("\nPOST /narrate (empty) → {} {}", resp.status, resp.body);

    // Service counters.
    let stats = client.get("/stats").unwrap();
    println!("\nGET /stats            → {}", stats.body);

    drop(client);
    handle.shutdown().unwrap();
    println!("\nserver drained and shut down cleanly");
}
