//! Train NEURAL-LANTERN end-to-end (paper §6): random queries → QEPs →
//! acts → rule labels → paraphrase expansion → QEP2Seq training → beam
//! decoding with tag substitution. Prints the rule narration and the
//! neural narration side by side so the injected variability is
//! visible.
//!
//! Run with: `cargo run --release --example train_neural`

use lantern::catalog::dblp_catalog;
use lantern::core::{NarrationRequest, RuleTranslator, Translator};
use lantern::engine::Database;
use lantern::neural::{NeuralLantern, Qep2SeqConfig};
use lantern::plan::{PlanNode, PlanTree};
use lantern::pool::default_pg_store;

fn main() {
    let db = Database::generate(&dblp_catalog(), 0.0003, 7);
    let store = default_pg_store();

    println!("training QEP2Seq on 60 random DBLP queries (paraphrase-expanded)...");
    let mut config = Qep2SeqConfig::default();
    config.train.epochs = 20;
    let (neural, training_set) = NeuralLantern::train_on(&db, &store, 60, config, 11);
    let (in_vocab, out_vocab) = neural.model().vocab_sizes();
    println!(
        "  {} acts -> {} training samples; input vocab {}, output vocab {} \
         (paper: 36 / 62)\n",
        training_set.act_count,
        training_set.examples.len(),
        in_vocab,
        out_vocab
    );

    // The paper's Figure 4 plan.
    let tree = PlanTree::new(
        "pg",
        PlanNode::new("Hash Join")
            .with_join_cond("((i.proceeding_key) = (p.pub_key))")
            .with_child(PlanNode::new("Seq Scan").on_relation("inproceedings"))
            .with_child(
                PlanNode::new("Hash").with_child(
                    PlanNode::new("Seq Scan")
                        .on_relation("publication")
                        .with_filter("title LIKE '%July%'"),
                ),
            ),
    );

    let request = NarrationRequest::from_tree(&tree);
    let rule = RuleTranslator::new(store.clone());
    println!("RULE-LANTERN (always the same wording):");
    println!("{}\n", rule.narrate(&request).expect("narrates").text);

    println!("NEURAL-LANTERN (varied wording, concrete values restored):");
    println!("{}", neural.narrate(&request).expect("translates").text);
}
