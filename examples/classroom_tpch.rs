//! Classroom session on TPC-H: the full substrate at work. Generates a
//! TPC-H database, plans and *executes* real workload queries, shows
//! the plan in all three formats of the paper's Figure 3 survey, and
//! narrates it with RULE-LANTERN.
//!
//! Run with: `cargo run --release --example classroom_tpch`

use lantern::engine::{exec, explain::explain};
use lantern::prelude::*;

fn main() {
    let db = Database::generate(&tpch_catalog(), 0.0005, 2024);
    let planner = Planner::new(&db);
    let service = LanternBuilder::new()
        .store(PoemStore::with_default_pg_operators())
        .build()
        .expect("valid configuration");

    let sql = "SELECT c.c_mktsegment, COUNT(*) AS orders_cnt, AVG(o.o_totalprice) \
               FROM customer c, orders o WHERE c.c_custkey = o.o_custkey \
               AND o.o_orderstatus = 'F' GROUP BY c.c_mktsegment \
               ORDER BY orders_cnt DESC LIMIT 3";
    println!("SQL:\n  {sql}\n");

    let query = parse_sql(sql).expect("parses");
    let plan = planner.plan(&query).expect("plans");

    println!("--- EXPLAIN (text) ---------------------------------------");
    println!("{}\n", explain(&plan, ExplainFormat::Text));

    println!("--- EXPLAIN (PostgreSQL JSON, first lines) ----------------");
    let json = explain(&plan, ExplainFormat::PgJson);
    for line in json.lines().take(12) {
        println!("{line}");
    }
    println!("  ...\n");

    println!("--- LANTERN narration -------------------------------------");
    let response = service
        .narrate(&NarrationRequest::from(&plan))
        .expect("narrates");
    println!("{}\n", response.text);

    println!("--- Query result (the engine actually runs it) ------------");
    let result = exec::execute(&plan, &db).expect("executes");
    println!("{}", result.columns.join(" | "));
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
}
