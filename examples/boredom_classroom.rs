//! The habituation story (paper §6.1 and US 3): simulate a class
//! reading twenty narrations, once phrased identically (RULE-LANTERN)
//! and once with variation (NEURAL-LANTERN-style), and watch boredom
//! emerge from the psychology model.
//!
//! Run with: `cargo run --release --example boredom_classroom`

use lantern::study::{boredom_study, Population};

fn main() {
    // Twenty near-identical rule narrations vs twenty varied ones.
    let rule_stream: Vec<String> = (0..20)
        .map(|i| {
            format!(
                "1. perform sequential scan on movies to get the intermediate relation T{i}.\n\
                 2. hash T{i} and perform hash join on roles and T{i} on condition \
                 ((r.movie_id) = (m.movie_id)) to get the final results."
            )
        })
        .collect();
    let variants = [
        "1. execute sequential scan on movies yielding T{i}.\n2. build a hash table over T{i}; then combine roles with T{i} to produce the final answer.",
        "1. a full table scan reads movies into T{i}.\n2. perform hash join on roles and T{i} under the join condition to get the conclusive outcome.",
        "1. scan movies sequentially to obtain T{i}.\n2. hash T{i} and match it against roles on the join keys for the final results.",
        "1. read every row of movies, keeping them as T{i}.\n2. the rows of roles are probed against hashed T{i} to produce the result.",
    ];
    let neural_stream: Vec<String> = (0..20)
        .map(|i| variants[i % variants.len()].replace("{i}", &i.to_string()))
        .collect();

    let mut population = Population::sample(43, 7);
    let report = boredom_study(
        &mut population,
        &[
            ("rule-lantern".to_string(), rule_stream),
            ("neural-lantern".to_string(), neural_stream),
        ],
    );

    println!("Boredom index after 20 narrations (1 = engaged, 5 = extremely bored):\n");
    for (label, hist) in &report.rows {
        println!(
            "  {label:15} {hist}   bored(>3): {}",
            hist.count(4) + hist.count(5)
        );
    }
    println!(
        "\nPaper Table 7: rule-lantern bores 15/43 learners; neural-lantern only 4/43 —\n\
         message variation slows habituation (Schumann et al. 1990)."
    );
}
