//! The plan-diff engine end to end: a base plan compared against three
//! alternatives a student might see for the same query — an index
//! added, the join algorithm changed, and a re-`ANALYZE` that only
//! jittered the estimates — each diffed, scored, and narrated, then
//! the whole set ranked by informativeness through the batch API.
//!
//! Run with: `cargo run --release --example diff_demo`

use lantern::prelude::*;

/// The base: a sequential scan feeding a nested-loop join.
const BASE: &str = r#"{"Plan": {"Node Type": "Nested Loop",
    "Join Filter": "((o.o_custkey) = (c.c_custkey))",
    "Plan Rows": 1200, "Total Cost": 4800.0,
    "Plans": [
        {"Node Type": "Seq Scan", "Relation Name": "orders", "Alias": "o",
         "Filter": "o_totalprice > 1000", "Plan Rows": 1200, "Total Cost": 3200.0},
        {"Node Type": "Seq Scan", "Relation Name": "customer", "Alias": "c",
         "Plan Rows": 150, "Total Cost": 90.0}
    ]}}"#;

/// Alternative 1: the DBA added an index — the orders scan becomes an
/// index scan and the whole plan gets cheaper.
const INDEXED: &str = r#"{"Plan": {"Node Type": "Nested Loop",
    "Join Filter": "((o.o_custkey) = (c.c_custkey))",
    "Plan Rows": 1200, "Total Cost": 950.0,
    "Plans": [
        {"Node Type": "Index Scan", "Relation Name": "orders", "Alias": "o",
         "Index Name": "orders_totalprice_idx",
         "Filter": "o_totalprice > 1000", "Plan Rows": 1200, "Total Cost": 420.0},
        {"Node Type": "Seq Scan", "Relation Name": "customer", "Alias": "c",
         "Plan Rows": 150, "Total Cost": 90.0}
    ]}}"#;

/// Alternative 2: the optimizer picked a hash join instead.
const HASHED: &str = r#"{"Plan": {"Node Type": "Hash Join",
    "Hash Cond": "((o.o_custkey) = (c.c_custkey))",
    "Plan Rows": 1200, "Total Cost": 3400.0,
    "Plans": [
        {"Node Type": "Seq Scan", "Relation Name": "orders", "Alias": "o",
         "Filter": "o_totalprice > 1000", "Plan Rows": 1200, "Total Cost": 3200.0},
        {"Node Type": "Seq Scan", "Relation Name": "customer", "Alias": "c",
         "Plan Rows": 150, "Total Cost": 90.0}
    ]}}"#;

/// Alternative 3: the same plan after `ANALYZE` — structurally
/// identical, only the estimates drifted.
const JITTERED: &str = r#"{"Plan": {"Node Type": "Nested Loop",
    "Join Filter": "((o.o_custkey) = (c.c_custkey))",
    "Plan Rows": 1315, "Total Cost": 4911.5,
    "Plans": [
        {"Node Type": "Seq Scan", "Relation Name": "orders", "Alias": "o",
         "Filter": "o_totalprice > 1000", "Plan Rows": 1315, "Total Cost": 3290.0},
        {"Node Type": "Seq Scan", "Relation Name": "customer", "Alias": "c",
         "Plan Rows": 150, "Total Cost": 90.0}
    ]}}"#;

fn main() {
    let service = LanternBuilder::new().build().unwrap();

    // One comparison, narrated: what changed when the index appeared.
    let resp = service.diff_documents(BASE, INDEXED).unwrap();
    println!("=== base vs indexed (score {:.1}) ===", resp.score);
    for change in &resp.changes {
        println!("  [{}] at {}: {}", change.kind, change.path, change.detail);
    }
    println!("\n{}\n", resp.text);

    // The batch path: rank all three alternatives by how much there is
    // to learn from each. The jittered re-EXPLAIN lands last — by
    // design, estimate drift never outranks a structural change.
    let base = PlanSource::auto(BASE).unwrap();
    let alts = [
        ("indexed", INDEXED),
        ("hash join", HASHED),
        ("re-ANALYZE jitter", JITTERED),
    ];
    let sources: Vec<PlanSource> = alts
        .iter()
        .map(|(_, doc)| PlanSource::auto(*doc).unwrap())
        .collect();
    let mut ranked: Vec<(f64, &str)> = service
        .narrate_diff_batch(&base, &sources, None)
        .into_iter()
        .zip(alts)
        .map(|(result, (label, _))| (result.unwrap().score, label))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("=== alternatives ranked by informativeness ===");
    for (score, label) in &ranked {
        println!("  {score:>7.1}  {label}");
    }
    assert_eq!(
        ranked.last().unwrap().1,
        "re-ANALYZE jitter",
        "estimate jitter must rank below structural changes"
    );

    // Self-diff: the identical plan reports exactly that.
    let same = service.diff_documents(BASE, BASE).unwrap();
    assert!(same.is_identical());
    println!("\nself-diff: {}", same.text);
}
