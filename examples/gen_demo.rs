//! Tour of the synthetic plan generator (`lantern-gen`): a seeded
//! stream of random-but-valid EXPLAIN artifacts in both vendor formats,
//! with duplicates and near-duplicate mutants mixed in at configured
//! rates — then the whole stream narrated through the cached service to
//! show the hit/miss structure the stream was designed to produce.
//!
//! Run with: `cargo run --release --example gen_demo`

use lantern::gen::{GenConfig, PlanGenerator, StreamKind};
use lantern::prelude::*;

fn main() {
    // A quarter duplicates, a fifth of the rest mutants, both formats.
    let config = GenConfig::default()
        .with_seed(42)
        .with_duplicate_rate(0.25)
        .with_mutate_rate(0.2);
    let mut generator = PlanGenerator::new(config);

    // Show one artifact of each format up close.
    let items = generator.generate(200);
    let pg = items
        .iter()
        .find(|i| i.format == ArtifactFormat::PgJson)
        .expect("mixed stream contains PG JSON");
    let xml = items
        .iter()
        .find(|i| i.format == ArtifactFormat::SqlServerXml)
        .expect("mixed stream contains XML");
    println!("a generated PostgreSQL artifact:\n{}\n", pg.doc);
    println!(
        "a generated SQL Server artifact:\n{}\n",
        &xml.doc[..xml.doc.len().min(400)]
    );

    // Stream composition: fresh / duplicate / mutant.
    let (mut fresh, mut dup, mut mutant) = (0, 0, 0);
    for item in &items {
        match &item.kind {
            StreamKind::Fresh => fresh += 1,
            StreamKind::Duplicate { .. } => dup += 1,
            StreamKind::Mutant { .. } => mutant += 1,
        }
    }
    println!(
        "stream of {}: {fresh} fresh, {dup} duplicates, {mutant} mutants",
        items.len()
    );

    // Feed the stream through a cached service: duplicates hit (same
    // bytes), estimate-jitter mutants hit too (the default fingerprint
    // ignores estimates), structural mutants and fresh plans miss.
    let service = LanternBuilder::new()
        .cache(CacheConfig::default())
        .build()
        .unwrap();
    for item in &items {
        service
            .narrate_document(&item.doc)
            .expect("every artifact narrates");
    }
    let stats = service.cache_stats().expect("cache is on");
    println!(
        "narrated all {}: {} cache hits ({} via exact document text), {} misses (hit ratio {:.2})",
        items.len(),
        stats.hits,
        stats.doc_hits,
        stats.misses,
        stats.hits as f64 / items.len() as f64
    );
}
